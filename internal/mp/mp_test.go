package mp

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// alphaBeta is a simple latency/bandwidth model for tests: every operation
// costs alpha + beta*bytes seconds, with transit twice that.
type alphaBeta struct{ alpha, beta float64 }

func (m alphaBeta) SendOverhead(b int, _ *rand.Rand) float64 { return m.alpha + m.beta*float64(b) }
func (m alphaBeta) RecvOverhead(b int, _ *rand.Rand) float64 { return m.alpha + m.beta*float64(b) }
func (m alphaBeta) Transit(b int, _ *rand.Rand) float64      { return 2 * (m.alpha + m.beta*float64(b)) }
func (m alphaBeta) ReduceCost(p, b int, _ *rand.Rand) float64 {
	return float64(p) * (m.alpha + m.beta*float64(b))
}

func TestNewWorldRejectsBadSize(t *testing.T) {
	if _, err := NewWorld(0, Options{}); err == nil {
		t.Error("expected error for size 0")
	}
	if _, err := NewWorld(-3, Options{}); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestPointToPointDelivery(t *testing.T) {
	w, err := NewWorld(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				return fmt.Errorf("got %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, err := RunWorld(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not be observed by the receiver
		} else {
			if got := c.Recv(0, 0); got[0] != 42 {
				return fmt.Errorf("payload mutated: %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	// Receiver asks for tag 2 first even though tag 1 was sent first.
	_, err := RunWorld(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			if got := c.Recv(0, 2); got[0] != 2 {
				return fmt.Errorf("tag 2 payload = %v", got)
			}
			if got := c.Recv(0, 1); got[0] != 1 {
				return fmt.Errorf("tag 1 payload = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	const n = 50
	_, err := RunWorld(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, []float64{float64(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := c.Recv(0, 0); got[0] != float64(i) {
					return fmt.Errorf("message %d overtaken: got %v", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToSelfPanicsToError(t *testing.T) {
	err := mustWorld(t, 1).Run(func(c *Comm) error {
		c.Send(0, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("expected error from self-send")
	}
}

func TestSendInvalidRank(t *testing.T) {
	err := mustWorld(t, 2).Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(5, 0, nil)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error from invalid destination")
	}
}

func mustWorld(t *testing.T, n int) *World {
	t.Helper()
	w, err := NewWorld(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	w, err := NewWorld(4, Options{Net: alphaBeta{alpha: 1e-6}})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		c.ChargeExact(float64(c.Rank())) // rank r is r seconds busy
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 + 4*1e-6 // latest participant + reduce cost
	for r := 0; r < 4; r++ {
		if math.Abs(w.Clock(r)-want) > 1e-12 {
			t.Errorf("rank %d clock = %v, want %v", r, w.Clock(r), want)
		}
	}
}

func TestAllreduce(t *testing.T) {
	_, err := RunWorld(5, Options{}, func(c *Comm) error {
		r := float64(c.Rank())
		if got := c.AllreduceMax(r); got != 4 {
			return fmt.Errorf("max = %v", got)
		}
		if got := c.AllreduceSum(r); got != 10 {
			return fmt.Errorf("sum = %v", got)
		}
		vec := c.AllreduceSumSlice([]float64{1, r})
		if vec[0] != 5 || vec[1] != 10 {
			return fmt.Errorf("vec = %v", vec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Many back-to-back generations must not cross-talk.
	_, err := RunWorld(8, Options{}, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			want := float64(i * 8)
			if got := c.AllreduceSum(float64(i)); got != want {
				return fmt.Errorf("round %d: sum = %v, want %v", i, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeCausality(t *testing.T) {
	// Receiver that is idle must not complete the receive before the
	// message's transit has elapsed.
	net := alphaBeta{alpha: 0.5} // send 0.5s, transit 1s, recv 0.5s
	w, err := NewWorld(2, Options{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.ChargeExact(10)
			c.Send(1, 0, []float64{1})
			if got := c.Now(); math.Abs(got-10.5) > 1e-12 {
				return fmt.Errorf("sender clock = %v, want 10.5", got)
			}
		} else {
			c.Recv(0, 0)
			// available at 10+1=11, plus 0.5 recv overhead
			if got := c.Now(); math.Abs(got-11.5) > 1e-12 {
				return fmt.Errorf("receiver clock = %v, want 11.5", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Makespan(); math.Abs(got-11.5) > 1e-12 {
		t.Errorf("makespan = %v, want 11.5", got)
	}
}

func TestBusyReceiverDominates(t *testing.T) {
	// If the receiver is busier than the transit, its own clock dominates.
	net := alphaBeta{alpha: 0.5}
	w, err := NewWorld(2, Options{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
		} else {
			c.ChargeExact(100)
			c.Recv(0, 0)
			if got := c.Now(); math.Abs(got-100.5) > 1e-12 {
				return fmt.Errorf("receiver clock = %v, want 100.5", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = w
}

func TestSendNWireSize(t *testing.T) {
	// Skeleton sends declare a wire size without a payload; cost must follow
	// the declared size.
	net := alphaBeta{beta: 1e-6}
	w, err := NewWorld(2, Options{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendN(1, 0, 1000, nil)
		} else {
			data, bytes := c.RecvN(0, 0)
			if data != nil {
				return fmt.Errorf("expected nil payload, got %v", data)
			}
			if bytes != 1000 {
				return fmt.Errorf("bytes = %d", bytes)
			}
			if got := c.Now(); math.Abs(got-3e-3) > 1e-12 { // transit 2ms + recv 1ms
				return fmt.Errorf("clock = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChargeNoiseDeterminism(t *testing.T) {
	run := func() float64 {
		w, err := NewWorld(3, Options{Noise: jitterNoise{0.1}, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(c *Comm) error {
			for i := 0; i < 100; i++ {
				c.Charge(0.01)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.Makespan()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("noise not deterministic: %v vs %v", a, b)
	}
	if math.Abs(a-1.0) > 0.5 {
		t.Errorf("noisy makespan wildly off: %v", a)
	}
}

type jitterNoise struct{ frac float64 }

func (j jitterNoise) Perturb(s float64, rng *rand.Rand) float64 {
	return s * (1 + j.frac*(2*rng.Float64()-1))
}

func TestChargeIgnoresNegative(t *testing.T) {
	w := mustWorld(t, 1)
	if err := w.Run(func(c *Comm) error {
		c.Charge(-5)
		c.ChargeExact(-5)
		if c.Now() != 0 {
			return fmt.Errorf("clock = %v", c.Now())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogDetectsDeadlock(t *testing.T) {
	w, err := NewWorld(2, Options{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Recv(0, 99) // never sent
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected watchdog abort")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("watchdog took too long")
	}
}

func TestWatchdogAllowsProgress(t *testing.T) {
	// Slow but progressing runs must not be killed.
	w, err := NewWorld(2, Options{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		for i := 0; i < 5; i++ {
			if c.Rank() == 0 {
				time.Sleep(10 * time.Millisecond)
				c.Send(1, i, nil)
			} else {
				c.Recv(0, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("progressing run aborted: %v", err)
	}
}

func TestRingPipelineVirtualTime(t *testing.T) {
	// A 1-D pipeline: rank r receives from r-1, works 1s, sends to r+1.
	// Makespan must be n seconds (fill) with zero-cost network.
	const n = 8
	w, err := NewWorld(n, Options{Net: alphaBeta{}})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() > 0 {
			c.Recv(c.Rank()-1, 0)
		}
		c.ChargeExact(1)
		if c.Rank() < n-1 {
			c.Send(c.Rank()+1, 0, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Makespan(); math.Abs(got-n) > 1e-12 {
		t.Errorf("pipeline makespan = %v, want %v", got, float64(n))
	}
	clocks := w.SortedClocks()
	for i := 1; i < len(clocks); i++ {
		if clocks[i] < clocks[i-1] {
			t.Error("SortedClocks not ascending")
		}
	}
}

func TestManyRanksStress(t *testing.T) {
	// A 500-rank ring exchange shakes out races under -race.
	const n = 500
	var total atomic.Int64
	_, err := RunWorld(n, Options{}, func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		c.Send(next, 0, []float64{float64(c.Rank())})
		got := c.Recv(prev, 0)
		total.Add(int64(got[0]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != n*(n-1)/2 {
		t.Errorf("total = %d", total.Load())
	}
}

func TestPropertyVirtualClocksMonotone(t *testing.T) {
	// Property: random charge/send/recv schedules never move a clock
	// backwards, and makespan >= every rank's total charged compute.
	f := func(seed int64, steps uint8) bool {
		n := 4
		work := make([]float64, n)
		w, err := NewWorld(n, Options{Net: alphaBeta{alpha: 1e-5, beta: 1e-8}, Seed: seed})
		if err != nil {
			return false
		}
		nsteps := int(steps%20) + 1
		err = w.Run(func(c *Comm) error {
			rng := rand.New(rand.NewSource(seed + int64(c.Rank())))
			last := 0.0
			for i := 0; i < nsteps; i++ {
				d := rng.Float64() * 0.01
				c.ChargeExact(d)
				work[c.Rank()] += d
				if c.Now() < last {
					return fmt.Errorf("clock went backwards")
				}
				last = c.Now()
				// Everyone exchanges with the next rank each round
				// (deterministic pattern, no deadlock).
				next := (c.Rank() + 1) % n
				prev := (c.Rank() + n - 1) % n
				c.Send(next, i, nil)
				c.Recv(prev, i)
				if c.Now() < last {
					return fmt.Errorf("clock went backwards after recv")
				}
				last = c.Now()
			}
			return nil
		})
		if err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			if w.Clock(r) < work[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCollectiveOpMismatchIsError(t *testing.T) {
	// One rank in AllreduceMax while another enters AllreduceSum is a
	// program error; the runtime must surface it rather than hang.
	w, err := NewWorld(2, Options{Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.AllreduceMax(1)
		} else {
			c.AllreduceSum(1)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestCollectiveLengthMismatchIsError(t *testing.T) {
	w, err := NewWorld(2, Options{Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.AllreduceSumSlice([]float64{1, 2})
		} else {
			c.AllreduceSumSlice([]float64{1})
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestRecvInvalidSourceIsError(t *testing.T) {
	err := mustWorld(t, 1).Run(func(c *Comm) error {
		c.Recv(9, 0)
		return nil
	})
	if err == nil {
		t.Fatal("expected invalid source error")
	}
}

func TestBcast(t *testing.T) {
	const root = 2
	_, err := RunWorld(4, Options{}, func(c *Comm) error {
		buf := []float64{0, 0}
		if c.Rank() == root {
			buf = []float64{3.14, 2.71}
		}
		got := c.Bcast(root, buf)
		if got[0] != 3.14 || got[1] != 2.71 {
			return fmt.Errorf("rank %d: bcast = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := mustWorld(t, 2).Run(func(c *Comm) error {
		c.Bcast(5, []float64{1})
		return nil
	})
	if err == nil {
		t.Fatal("expected invalid root error")
	}
}

func TestBcastRepeatedRoots(t *testing.T) {
	// Every rank takes a turn as root across rounds.
	const n = 4
	_, err := RunWorld(n, Options{}, func(c *Comm) error {
		for round := 0; round < n; round++ {
			v := 0.0
			if c.Rank() == round {
				v = float64(100 + round)
			}
			got := c.Bcast(round, []float64{v})
			if got[0] != float64(100+round) {
				return fmt.Errorf("round %d rank %d: %v", round, c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
