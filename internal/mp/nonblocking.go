package mp

import "fmt"

// Request is a handle on a nonblocking operation, in the spirit of
// MPI_Request. The paper lists "overlapped computation and communication"
// as future work for the modelling framework; these primitives let both
// the application skeleton and model templates express that overlap: the
// virtual-time benefit comes from where Wait is placed relative to compute
// charges (a receive waited on after useful work no longer exposes the
// message transit).
type Request struct {
	c        *Comm
	kind     rune // 's' send, 'r' receive
	src, tag int
	done     bool
	data     []float64
	bytes    int
}

// Isend starts a nonblocking standard-mode send. Like Send, the processor
// pays its send overhead immediately (the CPU work of injecting the message
// does not disappear by being nonblocking); the returned request completes
// trivially. data may be nil with an explicit wire size, as in SendN.
func (c *Comm) Isend(dst, tag, bytes int, data []float64) *Request {
	c.SendN(dst, tag, bytes, data)
	return &Request{c: c, kind: 's', done: true}
}

// Irecv posts a nonblocking receive. No time passes at the post; Wait
// performs the actual (virtual-time) completion. Posting order carries no
// matching priority — matching follows the (source, tag) streams exactly
// as for Recv, so a program that posts receives early and waits late gets
// the overlap benefit without changing matching semantics.
func (c *Comm) Irecv(src, tag int) *Request {
	if src < 0 || src >= c.w.n {
		panic(fmt.Errorf("mp: rank %d posting receive from invalid rank %d", c.rank, src))
	}
	return &Request{c: c, kind: 'r', src: src, tag: tag}
}

// Wait blocks until the operation completes and returns the received
// payload and wire size (nil/0 for sends). Waiting twice is an error.
func (r *Request) Wait() ([]float64, int) {
	if r.done {
		if r.kind == 'r' && r.data == nil && r.bytes == 0 {
			return r.data, r.bytes
		}
		return r.data, r.bytes
	}
	r.data, r.bytes = r.c.RecvN(r.src, r.tag)
	r.done = true
	return r.data, r.bytes
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// WaitAll completes a set of requests in order.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
