package mp

// The trace-compiled replay backend (Options.Scheduler == SchedulerTrace).
//
// Rationale: the event backend already removed locks and broadcast wake-ups,
// but every genuine block/wake still crosses two buffered-channel hops (park
// the blocking rank's goroutine, resume the next one). For the serving
// workloads — thousands of speculative sweep points whose rank control flow
// is identical — even that is waste: the communication structure of a run is
// deterministic, so it can be *recorded once* and then *replayed* in a flat,
// single-goroutine event loop with no channels, no goroutines, and no
// per-op allocations at all.
//
// The backend therefore has two phases:
//
//   - Recording: the first Run executes the rank function for real on the
//     event machinery, while each Comm operation appends one compact op to
//     the recording rank's script: sends and receives with their partner
//     (delta-encoded), tag and wire size; compute charges; collectives;
//     marks. The recording run is itself a valid run — its clocks are the
//     event backend's, bit for bit.
//   - Replay: subsequent Reset+Run cycles execute the recorded script in
//     the Replayer, a goroutine-free state machine that mirrors the event
//     scheduler's min-(clock, id) schedule with the same handoff-slot +
//     clock-heap structure — but a "handoff" is now an array index swap
//     instead of a channel send, and a "blocked rank" is three words of
//     saved cursor state instead of a parked goroutine.
//
// Replays are timing replays: virtual clocks, marks and the schedule are
// bit-identical to the event backend, but payload data does not flow and
// collective *values* are not reproduced (the rank function is not
// executed). Programs whose communication structure depends on received
// values cannot use this backend; the repo's modelled workloads (skeleton
// and template evaluation) never do.
//
// Costs are parameters of replay, not of the script. Wire sizes and compute
// charges are stored in side tables; ops reference table indices. Literal
// operations (SendN, Charge, ChargeExact) intern their values into the
// trace's own tables, while the parameterised operations (SendParam,
// ChargeParam) reference the caller-supplied tables of World.SetParams —
// so one recorded script can be replayed under different hardware models
// and cost kernels (see ReplayParams and internal/pace's shape-keyed trace
// compilation). Replays re-price everything from the replay-time
// NetworkModel: for DeterministicCosts models each distinct size is priced
// once per replay into flat arrays, so the per-op loop does no interface
// calls at all; for RNG-using models every op draws from per-rank streams
// in program order — exactly the order the live backends draw in — keeping
// replays bit-identical even under jitter.
//
// Memory: per-rank scripts are delta-encoded (a send stores dst-rank, so
// every interior rank of a regular decomposition produces byte-identical
// ops) and interned in fixed-size chunks shared across ranks. An 8000-rank
// wavefront whose raw op stream would be tens of millions of ops compacts
// to a handful of distinct boundary-signature scripts — a few MB — and the
// interning happens online during recording, so the raw stream never
// materialises.

import (
	"errors"
	"fmt"
	"math/rand"
)

// SchedulerTrace selects the trace-compiled replay backend: the first Run
// records the program on the event machinery, later Runs replay the
// recorded script without goroutines or channels. See the comment above.
const SchedulerTrace = "trace"

// MaxMarks is the number of mark slots a World carries (Comm.Mark).
const MaxMarks = 8

// Trace op kinds.
const (
	topChargeLit   uint8 = iota // clock += lits[arg0]
	topChargeNoisy              // clock += Perturb(lits[arg0], rank rng)
	topChargeParam              // clock += params.Charges[arg0] if positive
	topSendLit                  // send to rank+arg0, tag arg1, bytes sizes[arg2]
	topSendParam                // send to rank+arg0, tag arg1, bytes params.Sizes[arg2]
	topRecv                     // receive from rank+arg0, tag arg1
	topReduce                   // collective of payload length arg0
	topMark                     // marks[arg0] = clock
	topCkpt                     // clock += params.Charges[arg0] if positive; sets the failure rewind point
)

// top is one recorded operation. Partners are delta-encoded (arg0 holds
// dst-rank or src-rank) so that ranks with the same boundary signature
// produce identical op streams and share interned chunks.
type top struct {
	arg0 int32 // see the kind table above
	arg1 int32 // send/recv: tag
	arg2 int32 // send: size-table index
	kind uint8
}

// traceChunkOps is the interning granularity: scripts are split into
// chunks of this many ops and deduplicated across ranks (and across the
// repetitions within one rank). It bounds recording memory to
// n*traceChunkOps ops of open buffers regardless of program length.
const traceChunkOps = 128

// Trace is a recorded communication script: per-rank sequences of chunk
// ids over a shared interned chunk pool, plus the literal cost tables.
// A Trace is immutable after recording and safe to replay from any number
// of Replayers concurrently.
type Trace struct {
	n        int
	chunkOps []top     // interned chunk payloads, concatenated
	cstart   []int32   // chunk c occupies chunkOps[cstart[c]:cstart[c+1]]
	script   []int32   // concatenated per-rank chunk-id sequences
	sstart   []int32   // rank r's chunk ids are script[sstart[r]:sstart[r+1]]
	lits     []float64 // interned literal charges
	sizes    []int32   // interned literal wire sizes
	nmarks   int       // mark slots referenced (max slot + 1)
	maxChPar int32     // largest ChargeParam index referenced; -1 none
	maxSzPar int32     // largest SendParam size index referenced; -1 none
	ops      int       // total (pre-interning) op count

	// Derived replay acceleration state, built by finalize() in both
	// constructors (recording and decoding); immutable like the rest.
	fops         []fop      // fused programs, per chunk (see tracecycle.go)
	fstart       []int32    // chunk c's fused ops are fops[fstart[c]:fstart[c+1]]
	nmacroUnique int        // interned fused macro count
	fopsTotal    int        // fused dispatches per full replay
	macroTotal   int        // macro dispatches per full replay
	redSizes     []int      // distinct collective payload byte counts
	cyc          traceCycle // detected steady-state cycle (tracecycle.go)
}

// Ranks returns the world size the trace was recorded on.
func (t *Trace) Ranks() int { return t.n }

// RankOps returns the number of recorded operations in one rank's script —
// the exclusive upper bound of the Delay.Op coordinate for that rank.
func (t *Trace) RankOps(rank int) int {
	n := 0
	for _, c := range t.script[t.sstart[rank]:t.sstart[rank+1]] {
		n += int(t.cstart[c+1] - t.cstart[c])
	}
	return n
}

// OpIndexOfReduce returns the op index (the position in the rank's
// recorded op stream — the coordinate Delay.Op uses) of the rank's k-th
// collective, 0-based, or -1 if the rank records fewer than k+1
// collectives. It converts iteration-structured injection points into
// exact op indices: for a program that ends every iteration with one
// collective, iteration i starts at op 0 when i == 0 and at
// OpIndexOfReduce(rank, i-1)+1 otherwise.
func (t *Trace) OpIndexOfReduce(rank, k int) int {
	idx := 0
	for _, c := range t.script[t.sstart[rank]:t.sstart[rank+1]] {
		ops := t.chunkOps[t.cstart[c]:t.cstart[c+1]]
		for i := range ops {
			if ops[i].kind == topReduce {
				if k == 0 {
					return idx
				}
				k--
			}
			idx++
		}
	}
	return -1
}

// Ops returns the total recorded op count (before chunk interning).
func (t *Trace) Ops() int { return t.ops }

// UniqueOps returns the op count after chunk interning — the trace's
// actual memory footprint in ops.
func (t *Trace) UniqueOps() int { return len(t.chunkOps) }

// ReplayParams are the replay-time parameter tables referenced by
// ChargeParam and SendParam ops. Traces recorded without parameterised
// operations replay with zero-value params.
type ReplayParams struct {
	Charges []float64
	Sizes   []int

	// ExtraCycles extends the replay's virtual horizon by that many
	// repetitions of the trace's detected steady-state cycle beyond the
	// recorded count: the replayer loops the recorded cycle bodies (and
	// extrapolates across them when validated), so a short recorded trace
	// serves arbitrarily long iteration counts. Requires a detected cycle
	// and the deterministic unperturbed replay path; Replay returns
	// ErrCannotExtrapolate otherwise. 0 replays exactly as recorded.
	ExtraCycles int
}

// --- recording ---

// traceRec accumulates a trace during a recording run. The event backend
// runs exactly one rank at a time, so the recorder needs no locking.
type traceRec struct {
	n       int
	buf     [][]top   // per-rank open chunk (flushed at traceChunkOps)
	scripts [][]int32 // per-rank chunk-id sequences

	chunkOps []top
	cstart   []int32
	index    map[uint64][]int32 // chunk content hash -> candidate chunk ids

	lits    []float64
	litIdx  map[float64]int32
	sizes   []int32
	sizeIdx map[int]int32

	nmarks   int
	maxChPar int32
	maxSzPar int32
	ops      int
}

func newTraceRec(n int) *traceRec {
	return &traceRec{
		n:        n,
		buf:      make([][]top, n),
		scripts:  make([][]int32, n),
		cstart:   []int32{0},
		index:    make(map[uint64][]int32),
		litIdx:   make(map[float64]int32),
		sizeIdx:  make(map[int]int32),
		maxChPar: -1,
		maxSzPar: -1,
	}
}

func (r *traceRec) push(rank int, o top) {
	r.buf[rank] = append(r.buf[rank], o)
	r.ops++
	if len(r.buf[rank]) == traceChunkOps {
		r.flush(rank)
	}
}

// flush interns the rank's open chunk and appends its id to the rank's
// script. Equal chunks (same content) share one id across all ranks.
func (r *traceRec) flush(rank int) {
	ops := r.buf[rank]
	if len(ops) == 0 {
		return
	}
	h := chunkHash(ops)
	var id int32 = -1
	for _, cand := range r.index[h] {
		if chunkEqual(r.chunkOps[r.cstart[cand]:r.cstart[cand+1]], ops) {
			id = cand
			break
		}
	}
	if id < 0 {
		id = int32(len(r.cstart) - 1)
		r.chunkOps = append(r.chunkOps, ops...)
		r.cstart = append(r.cstart, int32(len(r.chunkOps)))
		r.index[h] = append(r.index[h], id)
	}
	r.scripts[rank] = append(r.scripts[rank], id)
	r.buf[rank] = r.buf[rank][:0]
}

func chunkHash(ops []top) uint64 {
	h := uint64(1469598103934665603) ^ uint64(len(ops))
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for i := range ops {
		o := &ops[i]
		mix(uint64(uint32(o.arg0)))
		mix(uint64(uint32(o.arg1)))
		mix(uint64(uint32(o.arg2)))
		mix(uint64(o.kind))
	}
	return h
}

func chunkEqual(a, b []top) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (r *traceRec) chargeLit(rank int, sec float64, noisy bool) {
	idx, ok := r.litIdx[sec]
	if !ok {
		idx = int32(len(r.lits))
		r.lits = append(r.lits, sec)
		r.litIdx[sec] = idx
	}
	k := topChargeLit
	if noisy {
		k = topChargeNoisy
	}
	r.push(rank, top{kind: k, arg0: idx})
}

func (r *traceRec) chargeParam(rank, i int) {
	if int32(i) > r.maxChPar {
		r.maxChPar = int32(i)
	}
	r.push(rank, top{kind: topChargeParam, arg0: int32(i)})
}

func (r *traceRec) send(rank, dst, tag, bytes int, paramIdx int32) {
	if paramIdx >= 0 {
		if paramIdx > r.maxSzPar {
			r.maxSzPar = paramIdx
		}
		r.push(rank, top{kind: topSendParam, arg0: int32(dst - rank), arg1: int32(tag), arg2: paramIdx})
		return
	}
	idx, ok := r.sizeIdx[bytes]
	if !ok {
		idx = int32(len(r.sizes))
		r.sizes = append(r.sizes, int32(bytes))
		r.sizeIdx[bytes] = idx
	}
	r.push(rank, top{kind: topSendLit, arg0: int32(dst - rank), arg1: int32(tag), arg2: idx})
}

func (r *traceRec) recv(rank, src, tag int) {
	r.push(rank, top{kind: topRecv, arg0: int32(src - rank), arg1: int32(tag)})
}

func (r *traceRec) reduce(rank, payloadLen int) {
	r.push(rank, top{kind: topReduce, arg0: int32(payloadLen)})
}

func (r *traceRec) mark(rank, slot int) {
	if slot+1 > r.nmarks {
		r.nmarks = slot + 1
	}
	r.push(rank, top{kind: topMark, arg0: int32(slot)})
}

func (r *traceRec) ckpt(rank, i int) {
	if int32(i) > r.maxChPar {
		r.maxChPar = int32(i)
	}
	r.push(rank, top{kind: topCkpt, arg0: int32(i)})
}

// build finalises the trace: tail chunks are flushed and per-rank scripts
// concatenated into the flat script/sstart layout.
func (r *traceRec) build() *Trace {
	total := 0
	for rank := 0; rank < r.n; rank++ {
		r.flush(rank)
		total += len(r.scripts[rank])
	}
	t := &Trace{
		n:        r.n,
		chunkOps: r.chunkOps,
		cstart:   r.cstart,
		script:   make([]int32, 0, total),
		sstart:   make([]int32, r.n+1),
		lits:     r.lits,
		sizes:    r.sizes,
		nmarks:   r.nmarks,
		maxChPar: r.maxChPar,
		maxSzPar: r.maxSzPar,
		ops:      r.ops,
	}
	for rank := 0; rank < r.n; rank++ {
		t.sstart[rank] = int32(len(t.script))
		t.script = append(t.script, r.scripts[rank]...)
	}
	t.sstart[r.n] = int32(len(t.script))
	t.finalize()
	return t
}

// --- replay ---

// Replay-only rank states, continuing the ev* space: a rank blocked inside
// a collective must not be woken by message delivery.
const rBlockedColl uint8 = 200

// rmsg is one in-flight replay message: its availability time plus the
// receive-side pricing, resolved at delivery time — the sender knows the
// (src, dst) pair, so the cost class is settled here and the consume path
// never re-derives it. Under a deterministic net aux IS the receive
// overhead in seconds (the consume path adds it with no further table
// lookup); under an RNG-using net aux carries the class-resolved unified
// table index cls*ns+u (exactly representable: indices are small) and the
// receiver prices at completion, preserving draw order.
type rmsg struct {
	avail float64
	aux   float64
}

// rstream is a per-(src, tag) FIFO of replay messages; consumed entries
// reset the slice so steady-state capacity is reused. Stream keys live in
// a parallel packed array (Replayer.skeys) so the per-op lookup scans one
// cache line instead of striding through these headers.
type rstream struct {
	head int32
	msgs []rmsg
}

// Replayer executes recorded traces. It owns all replay storage and
// reuses it across Replay calls: a warmed replayer re-running the same
// trace performs zero heap allocations. A Replayer is not safe for
// concurrent use; pool replayers, not replays.
type Replayer struct {
	t    *Trace
	opts Options
	det  bool              // opts.Net is nil or DeterministicCosts
	cnet ClassNetworkModel // opts.Net with >1 (src,dst) cost class; nil flat
	ncls int               // cost classes priced (1 for flat nets)
	ns   int               // unified size-table width (literals + params)

	charges []float64 // params.Charges (aliased, not copied)

	// Unified size tables: literal sizes first, then params.Sizes; bytes
	// holds the ns distinct wire sizes. With a deterministic net every
	// (cost class, size) pair is priced once per replay into the price
	// tables — entry cls*ns+u prices size u at class cls, a flat net
	// degenerating to the single-class prefix — so the op loop does pure
	// array arithmetic whatever the interconnect's shape.
	bytes    []int32
	sendSec  []float64
	availSec []float64
	recvSec  []float64

	// Per-rank state. The scheduler-hot fields live in one 40-byte record
	// per rank (rk), so a block, wake or delivery touches one cache line
	// instead of striding across parallel arrays; cold state (streams,
	// RNGs) stays out of it.
	//
	// Stream storage is flat and inline: rank r's first rsInline stream
	// keys live in its rrank record (scanned on the same cache lines the
	// delivery status check already loads) and the headers at
	// [r*rsInline, (r+1)*rsInline) of streamFlat, with the rare rank that
	// talks on more than rsInline (src, tag) pairs spilling into the
	// per-rank overflow slices.
	rk          []rrank
	streamFlat  []rstream
	overKeys    [][]uint64
	overStreams [][]rstream
	rngs        []*rand.Rand
	rngOK       []bool

	heap      clockHeap
	slot      int
	slotClock float64
	doneCount int

	collArrived int
	collMax     float64
	collWaiters []int32
	collRng     *rand.Rand
	collRngOK   bool
	redMemo     sizeCost // reduce-cost memo keyed by payload bytes (det nets)

	marks []float64

	// Fault-injection cursors and probe state (Options.Delays/Fails/
	// Probe), in parallel slices rather than rrank so the unperturbed hot
	// path — and its zero-allocation guarantee — is untouched. collGen
	// mirrors the live backends' collective generation counter for probe
	// rows. perturbed routes replay through the instrumented loop; the
	// plain hot loop never looks at any of this state. failing gates the
	// fail-stop machinery (fqs cursors, ckpts rewind targets) within it.
	perturbed bool
	injecting bool
	failing   bool
	dqs       [][]Delay
	fqs       [][]failCursor
	ckpts     []float64
	opns      []int32
	idles     []float64
	collGen   int

	// Steady-state cycle state (tracecycle.go). fusedPath selects the
	// fused hot loop (deterministic costs, no perturbation); cycOn tracks
	// a detected cycle through its boundaries; the stat counters feed
	// Stats(). The plan memo fields cache last-cycle boundary clocks of
	// completed replays keyed by their exact inputs.
	fusedPath bool
	cycOn     bool
	cycErr    error
	cycVirt   int // virtual steady cycles this replay must cover
	cycDone   int // virtual cycles completed (replayed + extrapolated)
	cycRec    int // recorded cycle index the current cycle runs from
	cycGen    int // collective generations closed so far
	cycPrevD  float64
	cycDelta  float64
	cycStreak int // consecutive bitwise-equal deltas observed

	statReplayed     int
	statExtrapolated int

	plans    [planSlots]steadyPlan
	planNext int
	planHit  int // matching plan slot for this replay; -1 none
	planD    float64
	planGot  bool
	planRed  []float64 // scratch: priced collective costs for fingerprints
}

// rsInline is the per-rank inline stream capacity; the wavefront needs at
// most four (two receive streams, two delivery streams).
const rsInline = 4

// rrank is one rank's scheduler-hot replay state, including its inline
// stream keys: a delivery's status check, wake-clock read and stream-key
// scan all land on this one record.
type rrank struct {
	clock        float64
	wantKey      uint64           // the stream a blocked receive waits for
	collDone     float64          // resolved collective completion clock
	skey         [rsInline]uint64 // inline stream keys (first nstreams valid)
	spos         int32            // cursor into Trace.script
	opos         int32            // cursor within the current chunk (fused index on the fused path)
	nstreams     uint16           // streams in use (inline + overflow)
	status       uint8
	fsub         uint8 // receives consumed by a parked fused macro (resume sub-step)
	collResolved bool  // collDone is pending consumption by the reduce op
}

// NewReplayer returns an empty replayer ready for Replay.
func NewReplayer() *Replayer { return &Replayer{slot: -1} }

// Makespan returns the maximum final clock of the last replay.
func (r *Replayer) Makespan() float64 {
	m := 0.0
	for i := range r.rk {
		if c := r.rk[i].clock; c > m {
			m = c
		}
	}
	return m
}

// Clock returns a rank's final clock after the last replay.
func (r *Replayer) Clock(rank int) float64 { return r.rk[rank].clock }

// Marks returns the mark slots written by the last replay; the slice is
// valid until the next Replay call.
func (r *Replayer) Marks() []float64 { return r.marks }

// Replay executes the trace under the given options and parameter tables.
// Clocks, marks and schedule order are bit-identical to running the
// recorded program on the event backend with the same options and params.
func (r *Replayer) Replay(t *Trace, opts Options, p ReplayParams) error {
	if err := r.prepare(t, opts, p); err != nil {
		return err
	}
	for {
		id := r.next()
		if id < 0 {
			if r.doneCount == t.n {
				if r.planGot && r.planHit < 0 {
					r.planStore()
				}
				return nil
			}
			// Unreachable for traces built by a completed recording run;
			// guards against corrupted or hand-built traces.
			return errors.New("mp: trace replay stalled (incomplete trace)")
		}
		r.runRank(id)
		if r.cycErr != nil {
			return r.cycErr
		}
	}
}

func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func (r *Replayer) prepare(t *Trace, opts Options, p ReplayParams) error {
	if t == nil {
		return errors.New("mp: Replay of a nil trace")
	}
	if int(t.maxChPar) >= len(p.Charges) {
		return fmt.Errorf("mp: trace references charge param %d, table holds %d", t.maxChPar, len(p.Charges))
	}
	if int(t.maxSzPar) >= len(p.Sizes) {
		return fmt.Errorf("mp: trace references size param %d, table holds %d", t.maxSzPar, len(p.Sizes))
	}
	if err := validDelays(t.n, opts.Delays); err != nil {
		return err
	}
	if err := validFailStops(t.n, opts.Fails); err != nil {
		return err
	}
	sameTrace := r.t == t
	r.opts = opts
	r.det = opts.Net == nil || netIsDeterministic(opts.Net)
	r.cnet, r.ncls = classesOf(opts.Net)
	r.charges = p.Charges

	nlit := len(t.sizes)
	ns := nlit + len(p.Sizes)
	r.ns = ns
	r.bytes = resizeI32(r.bytes, ns)
	copy(r.bytes, t.sizes)
	for i, b := range p.Sizes {
		r.bytes[nlit+i] = int32(b)
	}
	if net := opts.Net; net != nil && r.det {
		r.sendSec = resizeF(r.sendSec, r.ncls*ns)
		r.availSec = resizeF(r.availSec, r.ncls*ns)
		r.recvSec = resizeF(r.recvSec, r.ncls*ns)
		for i := 0; i < ns; i++ {
			b := int(r.bytes[i])
			if r.cnet == nil {
				r.sendSec[i] = net.SendOverhead(b, nil)
				r.availSec[i] = net.Transit(b, nil)
				r.recvSec[i] = net.RecvOverhead(b, nil)
				continue
			}
			for cls := 0; cls < r.ncls; cls++ {
				r.sendSec[cls*ns+i] = r.cnet.SendOverheadClass(cls, b, nil)
				r.availSec[cls*ns+i] = r.cnet.TransitClass(cls, b, nil)
				r.recvSec[cls*ns+i] = r.cnet.RecvOverheadClass(cls, b, nil)
			}
		}
	}

	n := t.n
	if len(r.rk) != n || !sameTrace {
		r.rk = make([]rrank, n)
		r.streamFlat = make([]rstream, n*rsInline)
		r.overKeys = nil
		r.overStreams = nil
		r.rngs = make([]*rand.Rand, n)
		r.rngOK = make([]bool, n)
		if cap(r.heap.e) < n {
			r.heap.e = make([]heapEntry, 0, n)
		}
	} else {
		for i := 0; i < n; i++ {
			// Clearing nstreams (via the record reset) retires the keys
			// without touching them; stream creation order is a pure
			// function of the schedule, so the same keys land in the same
			// slots next replay and message capacity is reused.
			cnt := int(r.rk[i].nstreams)
			if cnt > rsInline {
				cnt = rsInline
			}
			base := i * rsInline
			for j := 0; j < cnt; j++ {
				st := &r.streamFlat[base+j]
				st.head = 0
				st.msgs = st.msgs[:0]
			}
			if r.overStreams != nil {
				r.overKeys[i] = r.overKeys[i][:0]
				r.overStreams[i] = r.overStreams[i][:0]
			}
			r.rk[i] = rrank{}
			r.rngOK[i] = false
		}
	}
	// Reset cursors start every rank at its script head; the heap is
	// seeded in id order, which already satisfies the (clock, id) ordering
	// at clock zero.
	r.t = t
	r.heap.e = r.heap.e[:0]
	for i := 0; i < n; i++ {
		r.rk[i].spos = t.sstart[i]
		r.rk[i].status = evReady
		r.heap.e = append(r.heap.e, heapEntry{clock: 0, id: i})
	}
	r.slot = -1
	r.doneCount = 0
	r.collArrived = 0
	r.collWaiters = r.collWaiters[:0]
	r.collRngOK = false
	r.redMemo = sizeCost{bytes: -1}
	r.collGen = 0
	r.injecting = len(opts.Delays) > 0 || len(opts.Fails) > 0
	r.failing = len(opts.Fails) > 0
	r.perturbed = r.injecting || opts.Probe != nil || opts.Noise != nil
	r.dqs = nil
	r.fqs = nil
	if r.injecting {
		r.dqs = rankDelays(n, opts.Delays)
		if r.dqs == nil {
			r.dqs = make([][]Delay, n)
		}
	}
	if r.failing {
		r.fqs = rankFails(n, opts.Fails)
		r.ckpts = resizeF(r.ckpts, n)
		for i := 0; i < n; i++ {
			r.ckpts[i] = 0
		}
	}
	if l := opts.FailLog; l != nil {
		l.reset(len(opts.Fails))
	}
	if r.injecting || opts.Probe != nil {
		r.opns = resizeI32(r.opns, n)
		r.idles = resizeF(r.idles, n)
		for i := 0; i < n; i++ {
			r.opns[i] = 0
			r.idles[i] = 0
		}
	}
	if p := opts.Probe; p != nil {
		p.reset(n)
	}
	r.marks = resizeF(r.marks, t.nmarks)
	for i := range r.marks {
		r.marks[i] = 0
	}
	// Steady-state cycle gating: the fused loop (and with it extrapolation)
	// runs only when costs are deterministic and nothing perturbs the
	// replay; every other combination replays exactly as before.
	r.fusedPath = r.det && !r.perturbed
	r.cycOn = false
	r.cycErr = nil
	r.cycVirt, r.cycDone, r.cycRec, r.cycGen = 0, 0, 0, 0
	r.cycPrevD, r.cycDelta = 0, 0
	r.cycStreak = 0
	r.statReplayed, r.statExtrapolated = 0, 0
	r.planHit = -1
	r.planGot = false
	if p.ExtraCycles < 0 {
		return fmt.Errorf("mp: negative ExtraCycles %d", p.ExtraCycles)
	}
	if p.ExtraCycles > 0 && (!t.cyc.detected || !r.fusedPath) {
		return ErrCannotExtrapolate
	}
	if t.cyc.detected && r.fusedPath {
		r.cycOn = true
		r.cycVirt = t.cyc.cycles + p.ExtraCycles
		r.planScan()
	}
	return nil
}

// rng returns the rank's replay RNG stream, seeded exactly as the live
// backends seed theirs, so RNG-using cost models and noise draw identical
// sequences in identical per-rank program order.
func (r *Replayer) rng(id int) *rand.Rand {
	if !r.rngOK[id] {
		seed := r.opts.Seed + int64(id)*0x9E3779B9
		if r.rngs[id] == nil {
			r.rngs[id] = rand.New(rand.NewSource(seed))
		} else {
			r.rngs[id].Seed(seed)
		}
		r.rngOK[id] = true
	}
	return r.rngs[id]
}

// collRngStream is the collective-pricing stream (same seed derivation as
// the live backends' dedicated collective RNG).
func (r *Replayer) collRngStream() *rand.Rand {
	if !r.collRngOK {
		seed := r.opts.Seed ^ 0x1F3D5B79
		if r.collRng == nil {
			r.collRng = rand.New(rand.NewSource(seed))
		} else {
			r.collRng.Seed(seed)
		}
		r.collRngOK = true
	}
	return r.collRng
}

// streamFast scans the rank's inline stream keys (resident in its rrank
// record) for the key; the hot call sites (receive and deliver) use it
// directly and fall back to streamSlow on a miss. It must stay small
// enough to inline.
func (r *Replayer) streamFast(rank int, rk *rrank, k uint64) *rstream {
	ns := int(rk.nstreams)
	if ns > rsInline {
		ns = rsInline
	}
	for i := 0; i < ns; i++ {
		if rk.skey[i] == k {
			return &r.streamFlat[rank*rsInline+i]
		}
	}
	return nil
}

// streamSlow resolves a streamFast miss: overflow lookup, then stream
// creation (inline slot or per-rank overflow spill).
func (r *Replayer) streamSlow(rank int, k uint64) *rstream {
	rk := &r.rk[rank]
	ns := int(rk.nstreams)
	if ns > rsInline {
		over := r.overKeys[rank]
		for i := range over {
			if over[i] == k {
				return &r.overStreams[rank][i]
			}
		}
	}
	if ns >= 1<<16-1 {
		panic(errors.New("mp: replay rank exceeds 65534 distinct message streams"))
	}
	rk.nstreams++
	if ns < rsInline {
		rk.skey[ns] = k
		return &r.streamFlat[rank*rsInline+ns]
	}
	if r.overKeys == nil {
		r.overKeys = make([][]uint64, len(r.rk))
		r.overStreams = make([][]rstream, len(r.rk))
	}
	r.overKeys[rank] = append(r.overKeys[rank], k)
	r.overStreams[rank] = append(r.overStreams[rank], rstream{})
	return &r.overStreams[rank][len(r.overStreams[rank])-1]
}

// wake marks a blocked rank runnable, mirroring the event scheduler's
// handoff-slot discipline exactly (same displacement rule, same frozen
// block-time clocks), so the replay schedule is the event schedule.
func (r *Replayer) wake(id int) {
	r.rk[id].status = evReady
	clock := r.rk[id].clock
	s := r.slot
	if s < 0 {
		r.slot, r.slotClock = id, clock
		return
	}
	if clock < r.slotClock || (clock == r.slotClock && id < s) {
		id, clock, r.slot, r.slotClock = s, r.slotClock, id, clock
	}
	r.heap.push(heapEntry{clock: clock, id: id})
}

// next picks the runnable rank with the smallest (clock, id) from the
// slot or the heap; -1 when none is runnable.
func (r *Replayer) next() int {
	for {
		if s := r.slot; s >= 0 {
			if r.heap.len() == 0 || !entryLess(r.heap.top(), heapEntry{clock: r.slotClock, id: s}) {
				r.slot = -1
				return s
			}
		}
		if r.heap.len() == 0 {
			return -1
		}
		e := r.heap.pop()
		if r.rk[e.id].status != evReady {
			continue
		}
		return e.id
	}
}

// deliver appends a message to the destination's stream and wakes the
// destination if it is blocked on exactly that stream.
func (r *Replayer) deliver(dst int, k uint64, avail, aux float64) {
	rk := &r.rk[dst]
	st := r.streamFast(dst, rk, k)
	if st == nil {
		st = r.streamSlow(dst, k)
	}
	st.msgs = append(st.msgs, rmsg{avail: avail, aux: aux})
	if rk.status == evBlocked && rk.wantKey == k {
		r.wake(dst)
	}
}

// runRank dispatches one rank to the loop its replay mode needs:
// perturbed replays (delays, noise, fail-stop, probes) take the
// instrumented loop; deterministic-cost unperturbed replays take the
// fused loop (macro dispatch + steady-state extrapolation, tracecycle.go);
// RNG-drawing unperturbed replays keep the scalar loop, whose per-op draw
// order is the recorded program order.
func (r *Replayer) runRank(id int) {
	if r.perturbed {
		r.runRankPerturbed(id)
		return
	}
	if r.fusedPath {
		r.runRankFused(id)
		return
	}
	r.runRankScalar(id)
}

// runRankScalar executes one rank's script ops until the rank blocks or
// finishes: the replay hot loop for RNG-drawing cost models, every arm
// straight array arithmetic.
func (r *Replayer) runRankScalar(id int) {
	t := r.t
	net := r.opts.Net
	det := r.det
	cnet, ns := r.cnet, r.ns
	lits, charges := t.lits, r.charges
	sendSec, availSec, recvSec := r.sendSec, r.availSec, r.recvSec
	self := &r.rk[id]
	clock := self.clock
	sp, op := self.spos, self.opos
	sEnd := t.sstart[id+1]
	var chunk []top
	if sp < sEnd {
		c := t.script[sp]
		chunk = t.chunkOps[t.cstart[c]:t.cstart[c+1]]
	}
	for {
		if int(op) >= len(chunk) {
			if sp >= sEnd {
				break
			}
			sp++
			op = 0
			if sp >= sEnd {
				break
			}
			c := t.script[sp]
			chunk = t.chunkOps[t.cstart[c]:t.cstart[c+1]]
			continue
		}
		o := &chunk[op]
		switch o.kind {
		case topChargeParam, topCkpt:
			// Checkpoints charge like exact parametric ops here: failures
			// are impossible on the unperturbed path, so the rewind point
			// needs no tracking and the loop stays allocation-free.
			if s := charges[o.arg0]; s > 0 {
				clock += s
			}
		case topChargeLit:
			clock += lits[o.arg0]
		case topChargeNoisy:
			s := lits[o.arg0]
			if n := r.opts.Noise; n != nil {
				s = n.Perturb(s, r.rng(id))
			}
			clock += s
		case topSendLit, topSendParam:
			u := int(o.arg2)
			if o.kind == topSendParam {
				u += len(t.sizes)
			}
			dst := id + int(o.arg0)
			start := clock
			avail := start
			var aux float64 // unread when net == nil
			if net != nil {
				ui := u // class-resolved table index: cls*ns + size index
				if cnet != nil {
					ui += cnet.ClassOf(id, dst) * ns
				}
				if det {
					clock = start + sendSec[ui]
					avail = start + availSec[ui]
					aux = recvSec[ui]
				} else {
					rng := r.rng(id)
					b := int(r.bytes[u])
					if cnet != nil {
						cls := ui / ns
						clock = start + cnet.SendOverheadClass(cls, b, rng)
						avail = start + cnet.TransitClass(cls, b, rng)
					} else {
						clock = start + net.SendOverhead(b, rng)
						avail = start + net.Transit(b, rng)
					}
					aux = float64(ui)
				}
			}
			r.deliver(dst, qkey(id, int(o.arg1)), avail, aux)
		case topRecv:
			k := qkey(id+int(o.arg0), int(o.arg1))
			st := r.streamFast(id, self, k)
			if st == nil {
				st = r.streamSlow(id, k)
			}
			if st.head >= int32(len(st.msgs)) {
				// Park: save the cursor at this op; when woken, the outer
				// loop re-enters runRank and the receive re-executes with
				// the message queued.
				self.clock = clock
				self.spos, self.opos = sp, op
				self.status = evBlocked
				self.wantKey = k
				return
			}
			m := st.msgs[st.head]
			st.head++
			if st.head == int32(len(st.msgs)) {
				st.head = 0
				st.msgs = st.msgs[:0]
			}
			if m.avail > clock {
				clock = m.avail
			}
			if net != nil {
				if det {
					clock += m.aux
				} else {
					ui := int(m.aux)
					if cnet != nil {
						clock += cnet.RecvOverheadClass(ui/ns, int(r.bytes[ui%ns]), r.rng(id))
					} else {
						clock += net.RecvOverhead(int(r.bytes[ui]), r.rng(id))
					}
				}
			}
		case topReduce:
			if self.collResolved {
				self.collResolved = false
				clock = self.collDone
				break
			}
			if r.collArrived == 0 {
				r.collMax = clock
			} else if clock > r.collMax {
				r.collMax = clock
			}
			r.collArrived++
			if r.collArrived < t.n {
				// Park inside the collective; the closing rank resolves the
				// generation into collDone/collResolved, and the re-executed
				// op consumes it on resume.
				r.collWaiters = append(r.collWaiters, int32(id))
				self.clock = clock
				self.spos, self.opos = sp, op
				self.status = rBlockedColl
				return
			}
			// Last participant closes the generation and prices the
			// collective exactly as the live backends do.
			done := r.collMax
			if net != nil {
				bytes := 8 * int(o.arg0)
				if det {
					if r.redMemo.bytes != bytes {
						r.redMemo = sizeCost{bytes: bytes, sec: net.ReduceCost(t.n, bytes, nil)}
					}
					done += r.redMemo.sec
				} else {
					done += net.ReduceCost(t.n, bytes, r.collRngStream())
				}
			}
			r.collArrived = 0
			for _, wid := range r.collWaiters {
				wr := &r.rk[wid]
				wr.collDone = done
				wr.collResolved = true
				r.wake(int(wid))
			}
			r.collWaiters = r.collWaiters[:0]
			clock = done
		case topMark:
			r.marks[o.arg0] = clock
		}
		op++
	}
	self.clock = clock
	self.spos, self.opos = sp, 0
	self.status = evDone
	r.doneCount++
}

// runRankPerturbed is runRank with fault injection, compute noise and
// probe accounting woven into every arm. It is deliberately a separate
// copy of the hot loop: keeping the cursor/accumulator bookkeeping out
// of the plain path keeps unperturbed replays at their recorded cost,
// while this loop pays for exactly what a perturbation study uses.
// Clocks follow the same schedule law, so a perturbed replay is still
// bit-identical to the live backends under the same options.
func (r *Replayer) runRankPerturbed(id int) {
	t := r.t
	net := r.opts.Net
	noise := r.opts.Noise
	det := r.det
	cnet, ns := r.cnet, r.ns
	lits, charges := t.lits, r.charges
	sendSec, availSec, recvSec := r.sendSec, r.availSec, r.recvSec
	self := &r.rk[id]
	clock := self.clock
	sp, op := self.spos, self.opos
	sEnd := t.sstart[id+1]
	// Fault-injection cursor and probe accumulator, in registers for the
	// loop and written back on park/finish. Delays for an op index are
	// consumed in full at its first execution, so the park-and-re-execute
	// paths (receive, collective) cannot double-apply them.
	probe := r.opts.Probe
	inj := r.injecting
	failing := r.failing
	flog := r.opts.FailLog
	var (
		dq       []Delay
		fq       []failCursor
		lastCkpt float64
		opn      int32
		idle     float64
	)
	if inj {
		dq, opn = r.dqs[id], r.opns[id]
	}
	if failing {
		fq, lastCkpt = r.fqs[id], r.ckpts[id]
	}
	if probe != nil {
		idle = r.idles[id]
	}
	var chunk []top
	if sp < sEnd {
		c := t.script[sp]
		chunk = t.chunkOps[t.cstart[c]:t.cstart[c+1]]
	}
	for {
		if int(op) >= len(chunk) {
			if sp >= sEnd {
				break
			}
			sp++
			op = 0
			if sp >= sEnd {
				break
			}
			c := t.script[sp]
			chunk = t.chunkOps[t.cstart[c]:t.cstart[c+1]]
			continue
		}
		o := &chunk[op]
		if inj {
			for len(dq) > 0 && dq[0].Op == int(opn) {
				clock += dq[0].Seconds
				dq = dq[1:]
			}
			// Failures land after co-located delays, mirroring
			// Comm.injectFaults: the delay's damage is part of the rework a
			// failure at the same op re-executes.
			for len(fq) > 0 && fq[0].op == opn {
				f := fq[0]
				fq = fq[1:]
				rework := clock - lastCkpt
				if flog != nil {
					flog.events[f.slot] = FailEvent{
						Rank: id, Op: int(f.op), At: clock,
						LastCkpt: lastCkpt, Rework: rework, Restart: f.restart,
						Applied: true,
					}
				}
				clock += rework + f.restart
			}
		}
		switch o.kind {
		case topChargeParam:
			if s := charges[o.arg0]; s > 0 {
				if noise != nil {
					s = noise.Perturb(s, r.rng(id))
				}
				clock += s
			}
		case topCkpt:
			// Exact charge — checkpoint I/O is not subject to compute noise
			// — then pin the rewind target, as Comm.Checkpoint does.
			if s := charges[o.arg0]; s > 0 {
				clock += s
			}
			lastCkpt = clock
		case topChargeLit:
			clock += lits[o.arg0]
		case topChargeNoisy:
			s := lits[o.arg0]
			if noise != nil {
				s = noise.Perturb(s, r.rng(id))
			}
			clock += s
		case topSendLit, topSendParam:
			u := int(o.arg2)
			if o.kind == topSendParam {
				u += len(t.sizes)
			}
			dst := id + int(o.arg0)
			start := clock
			avail := start
			var aux float64 // unread when net == nil
			if net != nil {
				ui := u // class-resolved table index: cls*ns + size index
				if cnet != nil {
					ui += cnet.ClassOf(id, dst) * ns
				}
				if det {
					clock = start + sendSec[ui]
					avail = start + availSec[ui]
					aux = recvSec[ui]
				} else {
					rng := r.rng(id)
					b := int(r.bytes[u])
					if cnet != nil {
						cls := ui / ns
						clock = start + cnet.SendOverheadClass(cls, b, rng)
						avail = start + cnet.TransitClass(cls, b, rng)
					} else {
						clock = start + net.SendOverhead(b, rng)
						avail = start + net.Transit(b, rng)
					}
					aux = float64(ui)
				}
			}
			r.deliver(dst, qkey(id, int(o.arg1)), avail, aux)
		case topRecv:
			k := qkey(id+int(o.arg0), int(o.arg1))
			st := r.streamFast(id, self, k)
			if st == nil {
				st = r.streamSlow(id, k)
			}
			if st.head >= int32(len(st.msgs)) {
				// Park: save the cursor at this op; when woken, the outer
				// loop re-enters runRank and the receive re-executes with
				// the message queued.
				self.clock = clock
				self.spos, self.opos = sp, op
				self.status = evBlocked
				self.wantKey = k
				if inj {
					r.dqs[id], r.opns[id] = dq, opn
				}
				if failing {
					r.fqs[id], r.ckpts[id] = fq, lastCkpt
				}
				if probe != nil {
					r.idles[id] = idle
				}
				return
			}
			m := st.msgs[st.head]
			st.head++
			if st.head == int32(len(st.msgs)) {
				st.head = 0
				st.msgs = st.msgs[:0]
			}
			if m.avail > clock {
				if probe != nil {
					idle += m.avail - clock
				}
				clock = m.avail
			}
			if net != nil {
				if det {
					clock += m.aux
				} else {
					ui := int(m.aux)
					if cnet != nil {
						clock += cnet.RecvOverheadClass(ui/ns, int(r.bytes[ui%ns]), r.rng(id))
					} else {
						clock += net.RecvOverhead(int(r.bytes[ui]), r.rng(id))
					}
				}
			}
		case topReduce:
			if self.collResolved {
				// Resume after the closer resolved the generation; the
				// entry clock was frozen at park, so the idle delta matches
				// the live backends' done-minus-entry accounting.
				self.collResolved = false
				if probe != nil {
					idle += self.collDone - clock
				}
				clock = self.collDone
				break
			}
			if probe != nil {
				probe.record(r.collGen, id, clock, idle)
			}
			if r.collArrived == 0 {
				r.collMax = clock
			} else if clock > r.collMax {
				r.collMax = clock
			}
			r.collArrived++
			if r.collArrived < t.n {
				// Park inside the collective; the closing rank resolves the
				// generation into collDone/collResolved, and the re-executed
				// op consumes it on resume.
				r.collWaiters = append(r.collWaiters, int32(id))
				self.clock = clock
				self.spos, self.opos = sp, op
				self.status = rBlockedColl
				if inj {
					r.dqs[id], r.opns[id] = dq, opn
				}
				if failing {
					r.fqs[id], r.ckpts[id] = fq, lastCkpt
				}
				if probe != nil {
					r.idles[id] = idle
				}
				return
			}
			// Last participant closes the generation and prices the
			// collective exactly as the live backends do.
			done := r.collMax
			if net != nil {
				bytes := 8 * int(o.arg0)
				if det {
					if r.redMemo.bytes != bytes {
						r.redMemo = sizeCost{bytes: bytes, sec: net.ReduceCost(t.n, bytes, nil)}
					}
					done += r.redMemo.sec
				} else {
					done += net.ReduceCost(t.n, bytes, r.collRngStream())
				}
			}
			r.collArrived = 0
			r.collGen++
			for _, wid := range r.collWaiters {
				wr := &r.rk[wid]
				wr.collDone = done
				wr.collResolved = true
				r.wake(int(wid))
			}
			r.collWaiters = r.collWaiters[:0]
			if probe != nil {
				idle += done - clock
			}
			clock = done
		case topMark:
			r.marks[o.arg0] = clock
		}
		op++
		if inj {
			opn++
		}
	}
	self.clock = clock
	self.spos, self.opos = sp, 0
	self.status = evDone
	r.doneCount++
	if inj {
		r.dqs[id], r.opns[id] = dq, opn
	}
	if failing {
		r.fqs[id], r.ckpts[id] = fq, lastCkpt
	}
	if probe != nil {
		r.idles[id] = idle
	}
}
