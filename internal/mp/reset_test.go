package mp

import (
	"strings"
	"testing"
)

// TestWorldResetReplaysBitIdentical is the pooling correctness harness:
// a Reset world must replay the exact run — same seeds, same jitter
// streams, same clocks — on both backends, and a reused event world must
// still agree bit for bit with a fresh goroutine world.
func TestWorldResetReplaysBitIdentical(t *testing.T) {
	for _, sched := range schedulers {
		w, err := NewWorld(12, Options{
			Net:       alphaBeta{alpha: 2e-5, beta: 1e-8},
			Noise:     jitterNoise{0.05},
			Seed:      4242,
			Scheduler: sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		prog := wavefrontProgram(4, 3, 5)
		if err := w.Run(prog); err != nil {
			t.Fatal(err)
		}
		ref := w.SortedClocks()
		refSpan := w.Makespan()
		for reuse := 0; reuse < 3; reuse++ {
			w.Reset()
			if err := w.Run(prog); err != nil {
				t.Fatalf("%s reuse %d: %v", sched, reuse, err)
			}
			if w.Makespan() != refSpan {
				t.Fatalf("%s reuse %d: makespan %v != %v", sched, reuse, w.Makespan(), refSpan)
			}
			got := w.SortedClocks()
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s reuse %d: clock[%d] = %v, want %v", sched, reuse, i, got[i], ref[i])
				}
			}
		}
	}

	// Cross-backend: a reused event world versus a fresh goroutine world.
	fresh := runWavefront(t, SchedulerGoroutine, 4242)
	ev, err := NewWorld(12, Options{
		Net:       alphaBeta{alpha: 2e-5, beta: 1e-8},
		Noise:     jitterNoise{0.05},
		Seed:      4242,
		Scheduler: SchedulerEvent,
	})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		if rep > 0 {
			ev.Reset()
		}
		if err := ev.Run(wavefrontProgram(4, 3, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if fresh.Makespan() != ev.Makespan() {
		t.Fatalf("cross-backend after reuse: %v != %v", ev.Makespan(), fresh.Makespan())
	}
}

// TestWorldRunTwiceWithoutResetErrors pins the reuse contract: Run on a
// dirty world must fail loudly instead of silently continuing clocks.
func TestWorldRunTwiceWithoutResetErrors(t *testing.T) {
	for _, sched := range schedulers {
		w, err := NewWorld(2, Options{Scheduler: sched})
		if err != nil {
			t.Fatal(err)
		}
		noop := func(c *Comm) error { return nil }
		if err := w.Run(noop); err != nil {
			t.Fatal(err)
		}
		err = w.Run(noop)
		if err == nil || !strings.Contains(err.Error(), "Reset") {
			t.Fatalf("%s: second Run = %v, want already-run error", sched, err)
		}
		w.Reset()
		if err := w.Run(noop); err != nil {
			t.Fatalf("%s: Run after Reset = %v", sched, err)
		}
	}
}

// TestEventAbortInsideCollective drives the event scheduler into a
// deadlock where some ranks are parked *inside* a collective: the abort
// must unwind them (not just plain receives) and the world must be
// reusable after Reset.
func TestEventAbortInsideCollective(t *testing.T) {
	w, err := NewWorld(3, Options{Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() < 2 {
			c.AllreduceSum(1) // waits forever: rank 2 never joins
		} else {
			c.Recv(0, 99) // never sent
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected deadlock abort with ranks inside a collective")
	}

	// A rank exiting without joining the collective is the same stall.
	w.Reset()
	err = w.Run(func(c *Comm) error {
		if c.Rank() < 2 {
			c.Barrier()
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected abort when a rank exits past a collective")
	}

	// The aborted world must recover fully on Reset.
	w.Reset()
	err = w.Run(func(c *Comm) error {
		if got := c.AllreduceSum(float64(c.Rank())); got != 3 {
			t.Errorf("sum after recovery = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("world did not recover from aborts: %v", err)
	}
}

// ringProgram is the steady-state allocation workload: pure point-to-point
// traffic (collectives allocate their fresh result slices by contract).
func ringProgram(msgs int) func(c *Comm) error {
	return func(c *Comm) error {
		n := c.Size()
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		for i := 0; i < msgs; i++ {
			c.ChargeExact(1e-6)
			c.SendN(next, 0, 1024, nil)
			c.RecvN(prev, 0)
		}
		return nil
	}
}

// TestEventSteadyStateZeroAllocs is the ISSUE's allocation acceptance: a
// reused event world must run with zero heap allocations per message
// operation (here: zero for the entire Reset+Run cycle).
func TestEventSteadyStateZeroAllocs(t *testing.T) {
	w, err := NewWorld(8, Options{
		Net:       alphaBeta{alpha: 1e-6, beta: 1e-9},
		Seed:      7,
		Scheduler: SchedulerEvent,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := ringProgram(50)
	// Warm the world: first runs materialise RNGs, stream tables and the
	// runtime's goroutine free lists.
	for i := 0; i < 3; i++ {
		if i > 0 {
			w.Reset()
		}
		if err := w.Run(prog); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		w.Reset()
		if err := w.Run(prog); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Reset+Run allocations = %v per cycle (%d message ops), want 0", avg, 8*50*2)
	}
}

// TestGoroutineSteadyStatePooledAllocs is the goroutine backend's pooling
// check: per-run Comm/error-slot/closure state is pooled on the World, so
// the allocations of a warmed Reset+Run cycle must be a small constant —
// independent of both the message count and the per-rank Comm footprint.
// (Exact zero is not asserted: goroutine respawn may touch runtime-managed
// memory outside the test's control.)
func TestGoroutineSteadyStatePooledAllocs(t *testing.T) {
	const ranks = 8
	w, err := NewWorld(ranks, Options{
		Net:       alphaBeta{alpha: 1e-6, beta: 1e-9},
		Seed:      7,
		Scheduler: SchedulerGoroutine,
	})
	if err != nil {
		t.Fatal(err)
	}
	cycle := func(prog func(c *Comm) error) func() {
		return func() {
			w.Reset()
			if err := w.Run(prog); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm: materialise RNGs, queue capacities and the runtime's goroutine
	// free lists.
	for i := 0; i < 3; i++ {
		cycle(ringProgram(50))()
	}
	short := testing.AllocsPerRun(10, cycle(ringProgram(10)))
	long := testing.AllocsPerRun(10, cycle(ringProgram(400)))
	if long > short+4 {
		t.Errorf("allocations grow with message count: %v (10 msgs) vs %v (400 msgs)", short, long)
	}
	// Before pooling each cycle paid >= one Comm per rank; now the whole
	// cycle must stay well under that.
	if short >= ranks {
		t.Errorf("steady-state goroutine Reset+Run allocates %v per cycle, want < %d (one per rank)", short, ranks)
	}
}

// BenchmarkWorldReuseRun measures the pooled Reset+Run cycle; with
// ReportAllocs it documents the zero-allocation steady state (each op is
// a full 8-rank, 800-message-op virtual-time run).
func BenchmarkWorldReuseRun(b *testing.B) {
	w, err := NewWorld(8, Options{
		Net:       alphaBeta{alpha: 1e-6, beta: 1e-9},
		Seed:      7,
		Scheduler: SchedulerEvent,
	})
	if err != nil {
		b.Fatal(err)
	}
	prog := ringProgram(50)
	if err := w.Run(prog); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := w.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(8*50*2), "msg_ops/op")
}
