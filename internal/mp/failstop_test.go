package mp

import (
	"math"
	"testing"
)

// ckptWavefrontProgram is wavefrontProgram with a parametric checkpoint
// after every ckptEvery-th iteration's collective (none after the last),
// matching how the pace template lays out checkpoints. The charge table
// holds the checkpoint cost in slot 0.
func ckptWavefrontProgram(px, py, iters, ckptEvery int) func(c *Comm) error {
	return func(c *Comm) error {
		ix, iy := c.Rank()%px, c.Rank()/px
		for it := 0; it < iters; it++ {
			c.Charge(1e-4 * float64(1+c.Rank()%3))
			for _, sx := range []int{+1, -1} {
				for _, sy := range []int{+1, -1} {
					upX, downX := ix-sx, ix+sx
					upY, downY := iy-sy, iy+sy
					if upX >= 0 && upX < px {
						c.RecvN(iy*px+upX, 1)
					}
					if upY >= 0 && upY < py {
						c.RecvN(upY*px+ix, 2)
					}
					c.ChargeExact(2e-4)
					if downX >= 0 && downX < px {
						c.SendN(iy*px+downX, 1, 1200, nil)
					}
					if downY >= 0 && downY < py {
						c.SendN(downY*px+ix, 2, 960, nil)
					}
				}
			}
			c.AllreduceMax(float64(c.Rank()))
			if ckptEvery > 0 && (it+1)%ckptEvery == 0 && it != iters-1 {
				c.Checkpoint(0)
			}
		}
		c.AllreduceSum(1)
		return nil
	}
}

// testFailStops hits an interior rank twice (stacked rework), rank 0's
// first op (no checkpoint yet: rewind to time zero), and a late op of the
// last rank.
func testFailStops() []FailStop {
	return []FailStop{
		{Rank: 5, Op: 19, Restart: 4e-3},
		{Rank: 0, Op: 0, Restart: 1e-3},
		{Rank: 5, Op: 19, Restart: 2e-3},
		{Rank: 11, Op: 44, Restart: 5e-4},
	}
}

// runFailStopWavefront runs the checkpointed equivalence wavefront with
// injected failures (plus delays and noise) and a probe + fail log.
func runFailStopWavefront(t *testing.T, sched string, net NetworkModel, seed int64) (*World, *RunProbe, *FailLog) {
	t.Helper()
	probe := &RunProbe{}
	flog := &FailLog{}
	w, err := NewWorld(12, Options{
		Net:       net,
		Noise:     jitterNoise{0.04},
		Seed:      seed,
		Scheduler: sched,
		Delays:    testDelays(),
		Fails:     testFailStops(),
		FailLog:   flog,
		Probe:     probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.SetParams([]float64{3e-4}, nil)
	if err := w.Run(ckptWavefrontProgram(4, 3, 4, 2)); err != nil {
		t.Fatal(err)
	}
	return w, probe, flog
}

// TestSchedulerEquivalenceFailStop extends the cross-backend equivalence
// harness to fail-stop failures with checkpoint/restart, over flat and
// hierarchical (two- and three-level, deterministic and jittered)
// interconnects: goroutine, event and trace replay must agree bit for bit
// on every rank's clock, on the probe timelines, and on the failure
// accounting — including the replay of an already-recorded trace.
func TestSchedulerEquivalenceFailStop(t *testing.T) {
	nets := map[string]NetworkModel{"flat": alphaBeta{alpha: 2e-5, beta: 1e-8}}
	for name, net := range testHierNets() {
		nets[name] = net
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{3, 77} {
				g, gp, gl := runFailStopWavefront(t, SchedulerGoroutine, net, seed)
				gc := g.SortedClocks()
				for _, sched := range []string{SchedulerEvent, SchedulerTrace} {
					e, ep, el := runFailStopWavefront(t, sched, net, seed)
					if sched == SchedulerTrace {
						// Replay the recorded trace; nothing may move a bit.
						e.Reset()
						if err := e.Run(ckptWavefrontProgram(4, 3, 4, 2)); err != nil {
							t.Fatal(err)
						}
					}
					if g.Makespan() != e.Makespan() {
						t.Fatalf("seed %d: makespan goroutine %v != %s %v",
							seed, g.Makespan(), sched, e.Makespan())
					}
					for i := 0; i < 12; i++ {
						if g.Clock(i) != e.Clock(i) {
							t.Fatalf("seed %d: rank %d clock goroutine %v != %s %v",
								seed, i, g.Clock(i), sched, e.Clock(i))
						}
					}
					ec := e.SortedClocks()
					for i := range gc {
						if gc[i] != ec[i] {
							t.Fatalf("seed %d: clock[%d] goroutine %v != %s %v",
								seed, i, gc[i], sched, ec[i])
						}
					}
					requireSameProbe(t, name, "goroutine vs "+sched, gp, ep)
					requireSameFailLog(t, name, "goroutine vs "+sched, gl, el)
				}
			}
		})
	}
}

// requireSameFailLog asserts two fail logs recorded bit-identical events.
func requireSameFailLog(t *testing.T, name, scheds string, a, b *FailLog) {
	t.Helper()
	ae, be := a.Events(), b.Events()
	if len(ae) != len(be) {
		t.Fatalf("%s: fail log length %d vs %d (%s)", name, len(ae), len(be), scheds)
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: fail event %d: %+v vs %+v (%s)", name, i, ae[i], be[i], scheds)
		}
	}
}

// TestFailStopRewindSemantics pins the recovery model on the event
// backend: a failure charges exactly (clock - lastCkpt) + restart to the
// failed rank at the failure instant, rewinding to time zero when no
// checkpoint was taken, and a checkpointed run pays the checkpoint charge
// but bounds the rework.
func TestFailStopRewindSemantics(t *testing.T) {
	const ckptSec = 3e-4
	run := func(fails []FailStop, ckptEvery int) (*World, *FailLog) {
		flog := &FailLog{}
		w, err := NewWorld(12, Options{
			Net:       alphaBeta{alpha: 2e-5, beta: 1e-8},
			Seed:      9,
			Scheduler: SchedulerEvent,
			Fails:     fails,
			FailLog:   flog,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.SetParams([]float64{ckptSec}, nil)
		if err := w.Run(ckptWavefrontProgram(4, 3, 4, ckptEvery)); err != nil {
			t.Fatal(err)
		}
		return w, flog
	}

	base, _ := run(nil, 0)
	baseCk, _ := run(nil, 2)
	// Checkpointing alone costs exactly the checkpoint charges (absorbed or
	// not, the makespan cannot shrink).
	if baseCk.Makespan() < base.Makespan() {
		t.Fatalf("checkpointed baseline %v faster than plain %v", baseCk.Makespan(), base.Makespan())
	}

	// One failure late in an uncheckpointed run: the rank rewinds to time
	// zero, so its rework equals its full clock at the failure instant.
	fails := []FailStop{{Rank: 5, Op: 50, Restart: 2e-3}}
	_, flog := run(fails, 0)
	ev := flog.Events()[0]
	if !ev.Applied {
		t.Fatal("failure did not fire")
	}
	if ev.LastCkpt != 0 {
		t.Fatalf("uncheckpointed rewind target %v, want 0", ev.LastCkpt)
	}
	if ev.Rework != ev.At {
		t.Fatalf("rework %v != clock at failure %v", ev.Rework, ev.At)
	}
	if flog.Applied() != 1 || flog.ReworkSeconds() != ev.Rework || flog.RestartSeconds() != 2e-3 {
		t.Fatalf("log accounting: applied %d rework %v restart %v",
			flog.Applied(), flog.ReworkSeconds(), flog.RestartSeconds())
	}

	// The same failure with checkpoints every 2 iterations rewinds to a
	// checkpoint instead: strictly less rework, strictly positive target.
	_, flogCk := run(fails, 2)
	evCk := flogCk.Events()[0]
	if !evCk.Applied {
		t.Fatal("checkpointed failure did not fire")
	}
	if evCk.LastCkpt <= 0 {
		t.Fatalf("checkpointed rewind target %v, want > 0", evCk.LastCkpt)
	}
	if evCk.Rework >= ev.Rework {
		t.Fatalf("checkpointed rework %v not below uncheckpointed %v", evCk.Rework, ev.Rework)
	}
	if math.Abs(evCk.Rework-(evCk.At-evCk.LastCkpt)) > 1e-18 {
		t.Fatalf("rework %v != At-LastCkpt %v", evCk.Rework, evCk.At-evCk.LastCkpt)
	}

	// A failure spec beyond the rank's program never fires and leaves its
	// slot unapplied without disturbing the run.
	w, flogNop := run([]FailStop{{Rank: 3, Op: 100000, Restart: 1}}, 2)
	if flogNop.Applied() != 0 {
		t.Fatalf("phantom failure applied: %+v", flogNop.Events())
	}
	for i := 0; i < 12; i++ {
		if w.Clock(i) != baseCk.Clock(i) {
			t.Fatalf("unfired failure moved rank %d: %v vs %v", i, w.Clock(i), baseCk.Clock(i))
		}
	}
}

// TestFailStopValidation checks both entry points reject malformed specs.
func TestFailStopValidation(t *testing.T) {
	bad := [][]FailStop{
		{{Rank: -1, Op: 0, Restart: 1}},
		{{Rank: 12, Op: 0, Restart: 1}},
		{{Rank: 0, Op: -3, Restart: 1}},
		{{Rank: 0, Op: 0, Restart: -1}},
		{{Rank: 0, Op: 0, Restart: math.NaN()}},
		{{Rank: 0, Op: 0, Restart: math.Inf(1)}},
	}
	for i, fails := range bad {
		if _, err := NewWorld(12, Options{Fails: fails}); err == nil {
			t.Errorf("case %d: NewWorld accepted invalid fail-stop %+v", i, fails[0])
		}
	}

	w, err := NewWorld(4, Options{Scheduler: SchedulerTrace})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *Comm) error { c.Barrier(); return nil }); err != nil {
		t.Fatal(err)
	}
	rp := NewReplayer()
	for i, fails := range bad {
		if err := rp.Replay(w.Trace(), Options{Fails: fails}, ReplayParams{}); err == nil {
			t.Errorf("case %d: Replay accepted invalid fail-stop %+v", i, fails[0])
		}
	}
}

// TestFailStopStacking pins stacked failures at one (rank, op) slot: the
// segment is re-executed once per failure, so the second event's rework
// includes the first event's charges.
func TestFailStopStacking(t *testing.T) {
	flog := &FailLog{}
	w, err := NewWorld(12, Options{
		Net:       alphaBeta{alpha: 2e-5, beta: 1e-8},
		Seed:      1,
		Scheduler: SchedulerEvent,
		Fails: []FailStop{
			{Rank: 5, Op: 19, Restart: 1e-3},
			{Rank: 5, Op: 19, Restart: 1e-3},
		},
		FailLog: flog,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.SetParams([]float64{3e-4}, nil)
	if err := w.Run(ckptWavefrontProgram(4, 3, 4, 2)); err != nil {
		t.Fatal(err)
	}
	a, b := flog.Events()[0], flog.Events()[1]
	if !a.Applied || !b.Applied {
		t.Fatalf("stacked failures did not both fire: %+v %+v", a, b)
	}
	// Same rewind target; the second failure replays the first's rework and
	// restart on top.
	if a.LastCkpt != b.LastCkpt {
		t.Fatalf("rewind targets differ: %v vs %v", a.LastCkpt, b.LastCkpt)
	}
	want := a.Rework + a.Rework + a.Restart
	if math.Abs(b.Rework-want) > 1e-15 {
		t.Fatalf("second rework %v, want %v (first rework %v + first charge)", b.Rework, want, a.Rework)
	}
}
