package mp

// Binary codec for compiled traces, the artifact-store side of the trace
// tier: a recorded communication script serialises to a versioned,
// checksummed artifact and loads back into a Trace that replays
// bit-identically to its source. Traces record only table indices and
// delta-encoded partners — no platform, cost or class information — so one
// persisted trace artifact serves every platform of the same shape.
//
// The codec lives in package mp because every Trace field is unexported by
// design (a Trace is immutable after recording); the encoding is a direct
// image of the struct, field by field, in fixed little-endian layout, so
// encode→decode→encode is byte-identical.

import (
	"errors"
	"fmt"

	"pacesweep/internal/artifact"
)

const (
	// traceMagic identifies a compiled-trace artifact.
	traceMagic = "PACETRC\x00"
	// TraceCodecVersion is the current trace artifact version. Bump it on
	// any change to the op kind table, the chunk layout or the replay
	// parameter conventions; decoders refuse other versions except the
	// explicit back-compat set below.
	//
	// v2 appends optional steady-state cycle metadata (detection results;
	// see tracecycle.go) after the v1 fields. v1 artifacts still decode:
	// the cycle is recomputed live, and replays are bit-identical either
	// way — the metadata only saves the detection pass.
	TraceCodecVersion uint16 = 2
	// traceCodecV1 is the pre-cycle-metadata version, decoded for
	// backwards compatibility with persisted artifacts.
	traceCodecV1 uint16 = 1
)

// EncodeBinary serialises the trace into a self-describing, checksummed
// artifact. The encoding is deterministic: one trace always produces
// identical bytes.
func (t *Trace) EncodeBinary() []byte {
	return t.encodeBinary(TraceCodecVersion)
}

// encodeBinary writes the requested codec version; v1 stops before the
// cycle block. Kept separate so the round-trip tests can produce genuine
// legacy payloads.
func (t *Trace) encodeBinary(version uint16) []byte {
	e := artifact.NewEncoder(traceMagic, version)
	e.U32(uint32(t.n))
	e.U32(uint32(t.nmarks))
	e.I32(t.maxChPar)
	e.I32(t.maxSzPar)
	e.U64(uint64(t.ops))
	e.U32(uint32(len(t.chunkOps)))
	for _, o := range t.chunkOps {
		e.I32(o.arg0)
		e.I32(o.arg1)
		e.I32(o.arg2)
		e.U8(o.kind)
	}
	e.U32(uint32(len(t.cstart)))
	for _, v := range t.cstart {
		e.I32(v)
	}
	e.U32(uint32(len(t.script)))
	for _, v := range t.script {
		e.I32(v)
	}
	e.U32(uint32(len(t.sstart)))
	for _, v := range t.sstart {
		e.I32(v)
	}
	e.U32(uint32(len(t.lits)))
	for _, v := range t.lits {
		e.F64(v)
	}
	e.U32(uint32(len(t.sizes)))
	for _, v := range t.sizes {
		e.I32(v)
	}
	// v2 cycle metadata: the scalar detection results. Fused programs and
	// cursor fused-indices are always recomputed locally (they are pure
	// functions of the scalar tables), so the artifact stays
	// layout-independent of the fusion scheme.
	if version < TraceCodecVersion {
		return e.Finish()
	}
	if !t.cyc.detected {
		e.U8(0)
		return e.Finish()
	}
	e.U8(1)
	e.U32(uint32(t.cyc.period))
	e.U32(uint32(t.cyc.prefix))
	e.U32(uint32(t.cyc.cycles))
	e.U32(uint32(t.cyc.gens))
	e.U32(uint32(len(t.cyc.first)))
	for _, c := range t.cyc.classOf {
		e.I32(c)
	}
	for i := range t.cyc.first {
		e.I32(t.cyc.first[i].srel)
		e.I32(t.cyc.first[i].sop)
		e.I32(t.cyc.last[i].srel)
		e.I32(t.cyc.last[i].sop)
	}
	return e.Finish()
}

// DecodeTrace loads a trace artifact encoded by EncodeBinary. The envelope
// (magic, version, checksum) is verified before any field is read, and the
// decoded structure is validated — chunk table monotone, chunk ids and op
// kinds in range — so a decoded trace can never drive the replayer out of
// bounds. Corruption fails with artifact.ErrChecksum (or ErrTruncated /
// ErrFormat); a partial Trace is never returned.
//
// Both codec versions decode: v2 carries optional cycle metadata (itself
// validated before use — corrupt metadata is ErrFormat, never a bad
// cursor), v1 artifacts recompute the detection live. Either way the
// decoded trace replays bit-identically to its source.
func DecodeTrace(data []byte) (*Trace, error) {
	legacy := false
	d, err := artifact.NewDecoder(data, traceMagic, TraceCodecVersion)
	if errors.Is(err, artifact.ErrVersionMismatch) {
		if d1, err1 := artifact.NewDecoder(data, traceMagic, traceCodecV1); err1 == nil {
			d, err, legacy = d1, nil, true
		}
	}
	if err != nil {
		return nil, err
	}
	t := &Trace{
		n:        int(d.U32()),
		nmarks:   int(d.U32()),
		maxChPar: d.I32(),
		maxSzPar: d.I32(),
		ops:      int(d.U64()),
	}
	// Zero-length tables decode to nil, matching what recording leaves
	// (e.g. no literal sizes when every send is parameterised), so
	// decode→encode and structural comparisons are exact.
	if n := d.Len(); n > 0 {
		t.chunkOps = make([]top, n)
		for i := range t.chunkOps {
			t.chunkOps[i] = top{arg0: d.I32(), arg1: d.I32(), arg2: d.I32(), kind: d.U8()}
		}
	}
	if n := d.Len(); n > 0 {
		t.cstart = make([]int32, n)
		for i := range t.cstart {
			t.cstart[i] = d.I32()
		}
	}
	if n := d.Len(); n > 0 {
		t.script = make([]int32, n)
		for i := range t.script {
			t.script[i] = d.I32()
		}
	}
	if n := d.Len(); n > 0 {
		t.sstart = make([]int32, n)
		for i := range t.sstart {
			t.sstart[i] = d.I32()
		}
	}
	if n := d.Len(); n > 0 {
		t.lits = make([]float64, n)
		for i := range t.lits {
			t.lits[i] = d.F64()
		}
	}
	if n := d.Len(); n > 0 {
		t.sizes = make([]int32, n)
		for i := range t.sizes {
			t.sizes[i] = d.I32()
		}
	}
	var meta *traceCycleMeta
	if !legacy {
		if d.U8() != 0 {
			m := traceCycleMeta{
				period: int(d.U32()), prefix: int(d.U32()),
				cycles: int(d.U32()), gens: int(d.U32()),
				nclass: int(d.U32()),
			}
			if m.nclass > 0 && m.nclass <= t.n {
				m.classOf = make([]int32, t.n)
				for i := range m.classOf {
					m.classOf[i] = d.I32()
				}
				m.cursors = make([]int32, 4*m.nclass)
				for i := range m.cursors {
					m.cursors[i] = d.I32()
				}
				meta = &m
			} else {
				return nil, fmt.Errorf("%w: trace cycle metadata declares %d classes of %d ranks",
					artifact.ErrFormat, m.nclass, t.n)
			}
		}
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	if err := t.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", artifact.ErrFormat, err)
	}
	t.buildFused()
	t.collectReduceSizes()
	if meta != nil {
		if err := t.installCycle(meta); err != nil {
			return nil, fmt.Errorf("%w: %v", artifact.ErrFormat, err)
		}
	} else {
		// v1 artifact, or v2 recorded before detection succeeded:
		// recompute the cycle live.
		t.detectCycle()
	}
	return t, nil
}

// traceCycleMeta is the raw v2 cycle block, held apart from the trace
// until installCycle validates it against the decoded tables.
type traceCycleMeta struct {
	period, prefix, cycles, gens int
	nclass                       int
	classOf                      []int32
	cursors                      []int32 // per class: first.srel, first.sop, last.srel, last.sop
}

// installCycle validates decoded cycle metadata and installs it: class
// ids in range, every class populated, cursors inside their class's
// script on fused-op boundaries, and the generation arithmetic coherent.
// Any inconsistency is an error (the caller maps it to ErrFormat and the
// pace layer quarantines the artifact); the replayer never sees an
// unvalidated cursor.
func (t *Trace) installCycle(m *traceCycleMeta) error {
	if m.period < 1 || m.prefix < 1 || m.cycles < cycMinCycles ||
		m.gens < m.prefix+m.cycles*m.period+1 {
		return fmt.Errorf("trace: cycle geometry %d/%d/%d/%d inconsistent",
			m.period, m.prefix, m.cycles, m.gens)
	}
	rep := make([]int32, m.nclass)
	for i := range rep {
		rep[i] = -1
	}
	for r, c := range m.classOf {
		if c < 0 || int(c) >= m.nclass {
			return fmt.Errorf("trace: rank %d cycle class %d of %d", r, c, m.nclass)
		}
		if rep[c] < 0 {
			rep[c] = int32(r)
		} else if !i32SliceEqual(
			t.script[t.sstart[r]:t.sstart[r+1]],
			t.script[t.sstart[rep[c]]:t.sstart[rep[c]+1]]) {
			return fmt.Errorf("trace: rank %d script differs from its cycle class", r)
		}
	}
	cyc := traceCycle{
		detected: true, period: m.period, prefix: m.prefix,
		cycles: m.cycles, gens: m.gens, classOf: m.classOf,
		first: make([]cycCursor, m.nclass),
		last:  make([]cycCursor, m.nclass),
	}
	for c := 0; c < m.nclass; c++ {
		if rep[c] < 0 {
			return fmt.Errorf("trace: cycle class %d has no ranks", c)
		}
		fs, fo := m.cursors[4*c], m.cursors[4*c+1]
		ls, lo := m.cursors[4*c+2], m.cursors[4*c+3]
		ff, okf := t.fusedIndexAt(rep[c], fs, fo)
		lf, okl := t.fusedIndexAt(rep[c], ls, lo)
		if !okf || !okl {
			return fmt.Errorf("trace: cycle class %d cursor off fused-op boundary", c)
		}
		cyc.first[c] = cycCursor{srel: fs, sop: fo, fpos: ff}
		cyc.last[c] = cycCursor{srel: ls, sop: lo, fpos: lf}
	}
	t.cyc = cyc
	return nil
}

// validate checks the structural invariants recording guarantees, so a
// decoded trace drives the replayer exactly like a recorded one: monotone
// chunk and script tables, chunk ids, op kinds and table indices in range.
func (t *Trace) validate() error {
	if t.n <= 0 {
		return fmt.Errorf("trace: non-positive world size %d", t.n)
	}
	if t.nmarks < 0 || t.ops < 0 || t.maxChPar < -1 || t.maxSzPar < -1 {
		return fmt.Errorf("trace: negative counters")
	}
	nchunks := len(t.cstart) - 1
	if nchunks < 0 || t.cstart[0] != 0 || int(t.cstart[nchunks]) != len(t.chunkOps) {
		return fmt.Errorf("trace: malformed chunk table")
	}
	for i := 0; i < nchunks; i++ {
		if t.cstart[i] > t.cstart[i+1] {
			return fmt.Errorf("trace: chunk table not monotone at %d", i)
		}
	}
	if len(t.sstart) != t.n+1 || t.sstart[0] != 0 || int(t.sstart[t.n]) != len(t.script) {
		return fmt.Errorf("trace: malformed script table")
	}
	for r := 0; r < t.n; r++ {
		if t.sstart[r] > t.sstart[r+1] {
			return fmt.Errorf("trace: script table not monotone at rank %d", r)
		}
	}
	for i, c := range t.script {
		if c < 0 || int(c) >= nchunks {
			return fmt.Errorf("trace: script entry %d references chunk %d of %d", i, c, nchunks)
		}
	}
	for i, o := range t.chunkOps {
		if o.kind > topCkpt {
			return fmt.Errorf("trace: op %d has unknown kind %d", i, o.kind)
		}
		switch o.kind {
		case topChargeLit, topChargeNoisy:
			if int(o.arg0) >= len(t.lits) || o.arg0 < 0 {
				return fmt.Errorf("trace: op %d charge index %d out of range", i, o.arg0)
			}
		case topSendLit:
			if int(o.arg2) >= len(t.sizes) || o.arg2 < 0 {
				return fmt.Errorf("trace: op %d size index %d out of range", i, o.arg2)
			}
		case topMark:
			if int(o.arg0) >= t.nmarks || o.arg0 < 0 {
				return fmt.Errorf("trace: op %d mark slot %d out of range", i, o.arg0)
			}
		}
	}
	return nil
}
