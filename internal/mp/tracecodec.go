package mp

// Binary codec for compiled traces, the artifact-store side of the trace
// tier: a recorded communication script serialises to a versioned,
// checksummed artifact and loads back into a Trace that replays
// bit-identically to its source. Traces record only table indices and
// delta-encoded partners — no platform, cost or class information — so one
// persisted trace artifact serves every platform of the same shape.
//
// The codec lives in package mp because every Trace field is unexported by
// design (a Trace is immutable after recording); the encoding is a direct
// image of the struct, field by field, in fixed little-endian layout, so
// encode→decode→encode is byte-identical.

import (
	"fmt"

	"pacesweep/internal/artifact"
)

const (
	// traceMagic identifies a compiled-trace artifact.
	traceMagic = "PACETRC\x00"
	// TraceCodecVersion is the current trace artifact version. Bump it on
	// any change to the op kind table, the chunk layout or the replay
	// parameter conventions; decoders refuse other versions.
	TraceCodecVersion uint16 = 1
)

// EncodeBinary serialises the trace into a self-describing, checksummed
// artifact. The encoding is deterministic: one trace always produces
// identical bytes.
func (t *Trace) EncodeBinary() []byte {
	e := artifact.NewEncoder(traceMagic, TraceCodecVersion)
	e.U32(uint32(t.n))
	e.U32(uint32(t.nmarks))
	e.I32(t.maxChPar)
	e.I32(t.maxSzPar)
	e.U64(uint64(t.ops))
	e.U32(uint32(len(t.chunkOps)))
	for _, o := range t.chunkOps {
		e.I32(o.arg0)
		e.I32(o.arg1)
		e.I32(o.arg2)
		e.U8(o.kind)
	}
	e.U32(uint32(len(t.cstart)))
	for _, v := range t.cstart {
		e.I32(v)
	}
	e.U32(uint32(len(t.script)))
	for _, v := range t.script {
		e.I32(v)
	}
	e.U32(uint32(len(t.sstart)))
	for _, v := range t.sstart {
		e.I32(v)
	}
	e.U32(uint32(len(t.lits)))
	for _, v := range t.lits {
		e.F64(v)
	}
	e.U32(uint32(len(t.sizes)))
	for _, v := range t.sizes {
		e.I32(v)
	}
	return e.Finish()
}

// DecodeTrace loads a trace artifact encoded by EncodeBinary. The envelope
// (magic, version, checksum) is verified before any field is read, and the
// decoded structure is validated — chunk table monotone, chunk ids and op
// kinds in range — so a decoded trace can never drive the replayer out of
// bounds. Corruption fails with artifact.ErrChecksum (or ErrTruncated /
// ErrFormat); a partial Trace is never returned.
func DecodeTrace(data []byte) (*Trace, error) {
	d, err := artifact.NewDecoder(data, traceMagic, TraceCodecVersion)
	if err != nil {
		return nil, err
	}
	t := &Trace{
		n:        int(d.U32()),
		nmarks:   int(d.U32()),
		maxChPar: d.I32(),
		maxSzPar: d.I32(),
		ops:      int(d.U64()),
	}
	// Zero-length tables decode to nil, matching what recording leaves
	// (e.g. no literal sizes when every send is parameterised), so
	// decode→encode and structural comparisons are exact.
	if n := d.Len(); n > 0 {
		t.chunkOps = make([]top, n)
		for i := range t.chunkOps {
			t.chunkOps[i] = top{arg0: d.I32(), arg1: d.I32(), arg2: d.I32(), kind: d.U8()}
		}
	}
	if n := d.Len(); n > 0 {
		t.cstart = make([]int32, n)
		for i := range t.cstart {
			t.cstart[i] = d.I32()
		}
	}
	if n := d.Len(); n > 0 {
		t.script = make([]int32, n)
		for i := range t.script {
			t.script[i] = d.I32()
		}
	}
	if n := d.Len(); n > 0 {
		t.sstart = make([]int32, n)
		for i := range t.sstart {
			t.sstart[i] = d.I32()
		}
	}
	if n := d.Len(); n > 0 {
		t.lits = make([]float64, n)
		for i := range t.lits {
			t.lits[i] = d.F64()
		}
	}
	if n := d.Len(); n > 0 {
		t.sizes = make([]int32, n)
		for i := range t.sizes {
			t.sizes[i] = d.I32()
		}
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	if err := t.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", artifact.ErrFormat, err)
	}
	return t, nil
}

// validate checks the structural invariants recording guarantees, so a
// decoded trace drives the replayer exactly like a recorded one: monotone
// chunk and script tables, chunk ids, op kinds and table indices in range.
func (t *Trace) validate() error {
	if t.n <= 0 {
		return fmt.Errorf("trace: non-positive world size %d", t.n)
	}
	if t.nmarks < 0 || t.ops < 0 || t.maxChPar < -1 || t.maxSzPar < -1 {
		return fmt.Errorf("trace: negative counters")
	}
	nchunks := len(t.cstart) - 1
	if nchunks < 0 || t.cstart[0] != 0 || int(t.cstart[nchunks]) != len(t.chunkOps) {
		return fmt.Errorf("trace: malformed chunk table")
	}
	for i := 0; i < nchunks; i++ {
		if t.cstart[i] > t.cstart[i+1] {
			return fmt.Errorf("trace: chunk table not monotone at %d", i)
		}
	}
	if len(t.sstart) != t.n+1 || t.sstart[0] != 0 || int(t.sstart[t.n]) != len(t.script) {
		return fmt.Errorf("trace: malformed script table")
	}
	for r := 0; r < t.n; r++ {
		if t.sstart[r] > t.sstart[r+1] {
			return fmt.Errorf("trace: script table not monotone at rank %d", r)
		}
	}
	for i, c := range t.script {
		if c < 0 || int(c) >= nchunks {
			return fmt.Errorf("trace: script entry %d references chunk %d of %d", i, c, nchunks)
		}
	}
	for i, o := range t.chunkOps {
		if o.kind > topCkpt {
			return fmt.Errorf("trace: op %d has unknown kind %d", i, o.kind)
		}
		switch o.kind {
		case topChargeLit, topChargeNoisy:
			if int(o.arg0) >= len(t.lits) || o.arg0 < 0 {
				return fmt.Errorf("trace: op %d charge index %d out of range", i, o.arg0)
			}
		case topSendLit:
			if int(o.arg2) >= len(t.sizes) || o.arg2 < 0 {
				return fmt.Errorf("trace: op %d size index %d out of range", i, o.arg2)
			}
		case topMark:
			if int(o.arg0) >= t.nmarks || o.arg0 < 0 {
				return fmt.Errorf("trace: op %d mark slot %d out of range", i, o.arg0)
			}
		}
	}
	return nil
}
