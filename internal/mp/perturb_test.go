package mp

import (
	"math"
	"testing"
)

// testDelays is a small scenario touching an interior rank, rank 0's very
// first op, and a late op of the last rank; two delays stack on one slot.
func testDelays() []Delay {
	return []Delay{
		{Rank: 5, Op: 7, Seconds: 2e-3},
		{Rank: 0, Op: 0, Seconds: 1e-3},
		{Rank: 11, Op: 40, Seconds: 5e-4},
		{Rank: 5, Op: 7, Seconds: 3e-4},
	}
}

// runPerturbedWavefront runs the standard equivalence wavefront with
// injected delays and a probe attached.
func runPerturbedWavefront(t *testing.T, sched string, net NetworkModel, seed int64, delays []Delay) (*World, *RunProbe) {
	t.Helper()
	probe := &RunProbe{}
	w, err := NewWorld(12, Options{
		Net:       net,
		Noise:     jitterNoise{0.04},
		Seed:      seed,
		Scheduler: sched,
		Delays:    delays,
		Probe:     probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(wavefrontProgram(4, 3, 4)); err != nil {
		t.Fatal(err)
	}
	return w, probe
}

// requireSameProbe asserts two probes recorded bit-identical clock and
// idle timelines.
func requireSameProbe(t *testing.T, name, scheds string, a, b *RunProbe) {
	t.Helper()
	if a.Generations() != b.Generations() || a.Ranks() != b.Ranks() {
		t.Fatalf("%s: probe shape %dx%d vs %dx%d (%s)",
			name, a.Generations(), a.Ranks(), b.Generations(), b.Ranks(), scheds)
	}
	for g := 0; g < a.Generations(); g++ {
		ac, bc := a.ClockRow(g), b.ClockRow(g)
		ai, bi := a.IdleRow(g), b.IdleRow(g)
		for r := range ac {
			if ac[r] != bc[r] {
				t.Fatalf("%s gen %d rank %d: clock %v vs %v (%s)", name, g, r, ac[r], bc[r], scheds)
			}
			if ai[r] != bi[r] {
				t.Fatalf("%s gen %d rank %d: idle %v vs %v (%s)", name, g, r, ai[r], bi[r], scheds)
			}
		}
	}
}

// TestSchedulerEquivalenceInjectedDelays extends the cross-backend
// equivalence harness to fault injection: with the same injected-delay
// scenario (plus compute noise), goroutine, event and trace replay must
// agree bit for bit on every rank's clock and on the probe's clock/idle
// timelines — including the replay of an already-recorded trace.
func TestSchedulerEquivalenceInjectedDelays(t *testing.T) {
	nets := map[string]NetworkModel{"flat": alphaBeta{alpha: 2e-5, beta: 1e-8}}
	for name, net := range testHierNets() {
		nets[name] = net
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{3, 77} {
				g, gp := runPerturbedWavefront(t, SchedulerGoroutine, net, seed, testDelays())
				gc := g.SortedClocks()
				for _, sched := range []string{SchedulerEvent, SchedulerTrace} {
					e, ep := runPerturbedWavefront(t, sched, net, seed, testDelays())
					if sched == SchedulerTrace {
						// Replay the recorded trace; nothing may move a bit.
						e.Reset()
						if err := e.Run(wavefrontProgram(4, 3, 4)); err != nil {
							t.Fatal(err)
						}
					}
					if g.Makespan() != e.Makespan() {
						t.Fatalf("seed %d: makespan goroutine %v != %s %v",
							seed, g.Makespan(), sched, e.Makespan())
					}
					for i := 0; i < 12; i++ {
						if g.Clock(i) != e.Clock(i) {
							t.Fatalf("seed %d: rank %d clock goroutine %v != %s %v",
								seed, i, g.Clock(i), sched, e.Clock(i))
						}
					}
					ec := e.SortedClocks()
					for i := range gc {
						if gc[i] != ec[i] {
							t.Fatalf("seed %d: clock[%d] goroutine %v != %s %v",
								seed, i, gc[i], sched, ec[i])
						}
					}
					requireSameProbe(t, name, "goroutine vs "+sched, gp, ep)
				}
			}
		})
	}
}

// TestDelayInjectionShiftsClocks pins the injector's semantics: a delayed
// run can only be slower, the injected rank is damaged by at least its own
// (unabsorbed) delay budget's effect, and a delay-free Delays slice is a
// true no-op (bit-identical to the baseline).
func TestDelayInjectionShiftsClocks(t *testing.T) {
	net := alphaBeta{alpha: 2e-5, beta: 1e-8}
	run := func(delays []Delay) *World {
		w, err := NewWorld(12, Options{Net: net, Seed: 9, Scheduler: SchedulerEvent, Delays: delays})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(wavefrontProgram(4, 3, 4)); err != nil {
			t.Fatal(err)
		}
		return w
	}
	base := run(nil)
	empty := run([]Delay{})
	for i := 0; i < 12; i++ {
		if base.Clock(i) != empty.Clock(i) {
			t.Fatalf("empty delay slice moved rank %d: %v vs %v", i, empty.Clock(i), base.Clock(i))
		}
	}
	const d = 5e-3
	pert := run([]Delay{{Rank: 5, Op: 0, Seconds: d}})
	if pert.Makespan() < base.Makespan() {
		t.Fatalf("perturbed makespan %v < baseline %v", pert.Makespan(), base.Makespan())
	}
	if pert.Makespan() > base.Makespan()+d+1e-12 {
		t.Fatalf("damage %v exceeds injected %v", pert.Makespan()-base.Makespan(), d)
	}
	// A delay at op 0 lands before the rank's first collective, so it must
	// damage the rank's clock at least until the next synchronisation point
	// absorbs it; with d far above the program's total slack, global damage
	// must be visible.
	if pert.Makespan()-base.Makespan() < d/2 {
		t.Fatalf("a %vs delay produced only %vs damage", d, pert.Makespan()-base.Makespan())
	}
}

// TestDelayValidation checks both entry points reject malformed delays.
func TestDelayValidation(t *testing.T) {
	bad := [][]Delay{
		{{Rank: -1, Op: 0, Seconds: 1}},
		{{Rank: 12, Op: 0, Seconds: 1}},
		{{Rank: 0, Op: -3, Seconds: 1}},
		{{Rank: 0, Op: 0, Seconds: -1}},
		{{Rank: 0, Op: 0, Seconds: math.NaN()}},
		{{Rank: 0, Op: 0, Seconds: math.Inf(1)}},
	}
	for i, delays := range bad {
		if _, err := NewWorld(12, Options{Delays: delays}); err == nil {
			t.Errorf("case %d: NewWorld accepted invalid delay %+v", i, delays[0])
		}
	}

	w, err := NewWorld(4, Options{Scheduler: SchedulerTrace})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *Comm) error { c.Barrier(); return nil }); err != nil {
		t.Fatal(err)
	}
	rp := NewReplayer()
	for i, delays := range bad {
		if err := rp.Replay(w.Trace(), Options{Delays: delays}, ReplayParams{}); err == nil {
			t.Errorf("case %d: Replay accepted invalid delay %+v", i, delays[0])
		}
	}
}

// TestOpIndexOfReduce checks the iteration->op-index mapping on a recorded
// wavefront trace: the k-th collective of each rank is found at an op whose
// kind is topReduce, indices are strictly increasing per rank, and asking
// past the recorded collectives returns -1.
func TestOpIndexOfReduce(t *testing.T) {
	const iters = 4
	w, err := NewWorld(12, Options{Scheduler: SchedulerTrace})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(wavefrontProgram(4, 3, iters)); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	for rank := 0; rank < 12; rank++ {
		nops := tr.RankOps(rank)
		if nops == 0 {
			t.Fatalf("rank %d: empty script", rank)
		}
		prev := -1
		// wavefrontProgram runs one AllreduceMax per iteration plus a
		// final AllreduceSum.
		for k := 0; k < iters+1; k++ {
			idx := tr.OpIndexOfReduce(rank, k)
			if idx <= prev || idx >= nops {
				t.Fatalf("rank %d: reduce %d at op %d (prev %d, rank ops %d)", rank, k, idx, prev, nops)
			}
			prev = idx
		}
		if idx := tr.OpIndexOfReduce(rank, iters+1); idx != -1 {
			t.Fatalf("rank %d: phantom collective at op %d", rank, idx)
		}
	}
	// The final op of every rank must be the closing AllreduceSum.
	for rank := 0; rank < 12; rank++ {
		if got, want := tr.OpIndexOfReduce(rank, iters), tr.RankOps(rank)-1; got != want {
			t.Fatalf("rank %d: final collective at op %d, want %d", rank, got, want)
		}
	}
}

// TestRunProbeTimelines pins the probe's shape and basic physics on an
// unperturbed run: one row per collective generation, monotone per-rank
// clocks across generations, non-negative non-decreasing idle.
func TestRunProbeTimelines(t *testing.T) {
	const iters = 5
	probe := &RunProbe{}
	w, err := NewWorld(12, Options{
		Net:       alphaBeta{alpha: 2e-5, beta: 1e-8},
		Seed:      1,
		Scheduler: SchedulerEvent,
		Probe:     probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(wavefrontProgram(4, 3, iters)); err != nil {
		t.Fatal(err)
	}
	if got, want := probe.Generations(), iters+1; got != want {
		t.Fatalf("generations = %d, want %d", got, want)
	}
	if probe.Ranks() != 12 {
		t.Fatalf("ranks = %d, want 12", probe.Ranks())
	}
	for r := 0; r < 12; r++ {
		prevClock, prevIdle := -1.0, 0.0
		for g := 0; g < probe.Generations(); g++ {
			c, id := probe.ClockRow(g)[r], probe.IdleRow(g)[r]
			if c <= prevClock {
				t.Fatalf("rank %d gen %d: clock %v not increasing (prev %v)", r, g, c, prevClock)
			}
			if id < prevIdle {
				t.Fatalf("rank %d gen %d: idle %v decreased (prev %v)", r, g, id, prevIdle)
			}
			prevClock, prevIdle = c, id
		}
	}
	// Rerunning with the probe must reset it, not append.
	w.Reset()
	if err := w.Run(wavefrontProgram(4, 3, iters)); err != nil {
		t.Fatal(err)
	}
	if got, want := probe.Generations(), iters+1; got != want {
		t.Fatalf("after rerun: generations = %d, want %d", got, want)
	}
}
