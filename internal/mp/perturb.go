package mp

// Fault injection: one-off per-rank delays and run probes.
//
// A Delay pins extra seconds to one recordable operation of one rank; the
// injector advances a per-rank operation counter that counts exactly the
// operations a trace records (charges with positive cost, parametric
// charges, sends, receives, collectives, marks, checkpoints), so an op
// index means the same instant on the goroutine backend, the event
// backend, and a trace replay — the bit-identical-clock guarantee extends
// to perturbed runs. Fail-stop failures ride the same counter; see
// failstop.go. A
// RunProbe captures per-rank timelines (virtual clock and accumulated
// idle time at every collective generation) that the perturb package
// turns into idle-wave reports.

import (
	"fmt"
	"math"
	"sort"
)

// Delay is one injected one-off delay: Seconds of extra virtual time
// charged to Rank immediately before its Op-th recordable operation.
// Several delays may target the same (rank, op) slot; they stack.
type Delay struct {
	Rank    int
	Op      int
	Seconds float64
}

// validDelays rejects out-of-range or non-finite delays up front, so a
// malformed scenario fails loudly instead of silently never firing.
func validDelays(n int, delays []Delay) error {
	for _, d := range delays {
		if d.Rank < 0 || d.Rank >= n {
			return fmt.Errorf("mp: delay rank %d out of range [0,%d)", d.Rank, n)
		}
		if d.Op < 0 {
			return fmt.Errorf("mp: delay op %d negative (rank %d)", d.Op, d.Rank)
		}
		if d.Seconds < 0 || math.IsNaN(d.Seconds) || math.IsInf(d.Seconds, 0) {
			return fmt.Errorf("mp: delay seconds %v invalid (rank %d op %d)", d.Seconds, d.Rank, d.Op)
		}
	}
	return nil
}

// rankDelays partitions delays into per-rank queues ordered by op index.
// The returned slices are private copies; callers hand them out as
// consumable cursors without mutating the caller's spec.
func rankDelays(n int, delays []Delay) [][]Delay {
	if len(delays) == 0 {
		return nil
	}
	sorted := make([]Delay, len(delays))
	copy(sorted, delays)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Rank != sorted[j].Rank {
			return sorted[i].Rank < sorted[j].Rank
		}
		return sorted[i].Op < sorted[j].Op
	})
	per := make([][]Delay, n)
	lo := 0
	for hi := 1; hi <= len(sorted); hi++ {
		if hi == len(sorted) || sorted[hi].Rank != sorted[lo].Rank {
			per[sorted[lo].Rank] = sorted[lo:hi:hi]
			lo = hi
		}
	}
	return per
}

// RunProbe records per-rank timelines during a run: at every collective
// generation g, each rank's virtual clock on entry (after any injected
// delay at that op) and its accumulated idle time so far. Idle time is
// receive wait (message availability minus the receiver's clock when it
// arrives early) plus collective wait (the collective's completion time
// minus the rank's entry). Rows are dense [generation][rank] matrices;
// identical runs on any backend produce bit-identical rows.
//
// A probe is owned by one run at a time: Run/Replay reset it, and the
// recording is single-writer per (generation, rank) cell, so reads are
// safe once the run returns.
type RunProbe struct {
	n      int
	clocks []float64
	idle   []float64
}

func (p *RunProbe) reset(n int) {
	p.n = n
	p.clocks = p.clocks[:0]
	p.idle = p.idle[:0]
}

// record writes rank's entry state for collective generation gen, growing
// the matrices on first touch of a generation. On the goroutine backend
// calls are serialized by the collective's mutex; the other backends are
// single-threaded.
func (p *RunProbe) record(gen, rank int, clock, idle float64) {
	need := (gen + 1) * p.n
	for len(p.clocks) < need {
		p.clocks = append(p.clocks, 0)
		p.idle = append(p.idle, 0)
	}
	p.clocks[gen*p.n+rank] = clock
	p.idle[gen*p.n+rank] = idle
}

// Ranks returns the probed world size.
func (p *RunProbe) Ranks() int { return p.n }

// Generations returns how many collective generations were recorded.
func (p *RunProbe) Generations() int {
	if p.n == 0 {
		return 0
	}
	return len(p.clocks) / p.n
}

// ClockRow returns the per-rank entry clocks of generation g, aliasing
// the probe's storage.
func (p *RunProbe) ClockRow(g int) []float64 {
	return p.clocks[g*p.n : (g+1)*p.n]
}

// IdleRow returns the per-rank accumulated idle seconds on entry to
// generation g, aliasing the probe's storage.
func (p *RunProbe) IdleRow(g int) []float64 {
	return p.idle[g*p.n : (g+1)*p.n]
}
