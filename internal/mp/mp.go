// Package mp is an MPI-like message-passing runtime for in-process parallel
// programs. Ranks exchange typed messages through blocking point-to-point
// sends/receives and collectives.
//
// The runtime doubles as a virtual-time cluster simulator: when a World is
// created with a NetworkModel, every rank carries a virtual clock (seconds)
// that advances through explicit compute charges and through the network
// model's send/receive/transit costs. Receive completion respects causality:
// a message cannot be consumed before its availability time, which is the
// sender's clock at the start of the send plus the one-way transit time.
// This is the substrate both for "measured" cluster-simulation runs (driven
// by ground-truth platform models, internal/platform) and for PACE model
// evaluation (driven by fitted hardware models, internal/hwmodel).
//
// Two execution backends are provided, selected by Options.Scheduler:
//
//   - SchedulerGoroutine (the default): one preemptively scheduled
//     goroutine per rank with mutex+condvar inboxes. Ranks doing real
//     arithmetic (the functional solver) run in parallel on all cores, and
//     a watchdog (Options.Timeout) can abort stalled runs.
//   - SchedulerEvent: a cooperative event-driven run loop. Ranks execute
//     one at a time, ordered by a virtual-clock min-heap, handing control
//     off directly when they block; message delivery is a plain slice
//     append with no locks. Per-rank clocks and makespan are bit-identical
//     to the goroutine backend for the same seed (a test enforces it), and
//     a run is fully deterministic regardless of GOMAXPROCS — including
//     the floating-point accumulation order of collectives, which on the
//     goroutine backend follows nondeterministic arrival order, so summed
//     reduction *values* may differ from the goroutine backend in the last
//     bits. It is the backend of the PACE template evaluation engine and
//     of simulated measurement. Deadlocks are detected exactly (no
//     runnable rank while some are still blocked) instead of by timeout.
package mp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NetworkModel prices message-passing operations in seconds. Implementations
// may use the supplied per-rank RNG to add deterministic jitter; rng is never
// nil — except for models that implement DeterministicCosts and report true,
// which have declared their costs pure functions of the size and must ignore
// the RNG (the runtime then passes nil and memoizes per size). A nil
// NetworkModel on the World means all costs are zero (purely functional
// execution).
type NetworkModel interface {
	// SendOverhead is the time the sending processor is busy in a blocking
	// standard-mode send of the given wire size.
	SendOverhead(bytes int, rng *rand.Rand) float64
	// RecvOverhead is the time the receiving processor is busy completing a
	// receive once the message is available.
	RecvOverhead(bytes int, rng *rand.Rand) float64
	// Transit is the one-way end-to-end delay from send start until the
	// message is available at the receiver.
	Transit(bytes int, rng *rand.Rand) float64
	// ReduceCost is the time a p-rank reduction/barrier of the given payload
	// adds beyond synchronising at the latest participant's clock.
	ReduceCost(p, bytes int, rng *rand.Rand) float64
}

// ComputeNoise perturbs compute charges, modelling OS interference and other
// run-to-run variation. Implementations must be pure functions of their
// arguments and the RNG stream so that simulations are reproducible.
type ComputeNoise interface {
	Perturb(seconds float64, rng *rand.Rand) float64
}

// DeterministicCosts is an optional NetworkModel extension. A model that
// reports true declares all four cost methods pure functions of their size
// arguments (no RNG use): the runtime then skips per-rank RNG materialisation
// on the message path and caches one priced size per curve per rank, which is
// a near-100% hit rate for block-structured workloads like the wavefront.
type DeterministicCosts interface {
	CostsDeterministic() bool
}

// ClassNetworkModel is an optional NetworkModel extension for hierarchical
// interconnects: point-to-point costs depend on a (src, dst) cost class —
// same node, same cluster, cross-cluster WAN — as well as the wire size.
//
// ClassOf must be a pure, symmetric function of the rank pair, and the
// class methods pure functions of (class, size) modulo the supplied RNG —
// the same contract NetworkModel's size-only methods carry per size. The
// runtime resolves the class of every send at the sender (ClassOf(src,
// dst)) and of every receive at delivery (same pair, same class), so all
// three scheduler backends price identically. ReduceCost keeps pricing
// collectives whole — a hierarchical model folds its tiers into that one
// number (e.g. a tree that reduces within nodes before crossing them).
//
// A model reporting NetClasses() == 1 is flat; the runtime then ignores
// the class machinery entirely and keeps its single-class fast paths, so
// wrapping a flat network in this interface costs nothing. The size-only
// NetworkModel methods must price class 0 (used by class-unaware callers
// such as two-rank benchmark worlds).
type ClassNetworkModel interface {
	NetworkModel
	// NetClasses returns the number of distinct cost classes ClassOf can
	// produce; it must be at least 1 and constant for the model's lifetime.
	NetClasses() int
	// ClassOf resolves a rank pair to its cost class in [0, NetClasses()).
	ClassOf(src, dst int) int
	// SendOverheadClass, RecvOverheadClass and TransitClass are the
	// class-resolved forms of the NetworkModel methods.
	SendOverheadClass(class, bytes int, rng *rand.Rand) float64
	RecvOverheadClass(class, bytes int, rng *rand.Rand) float64
	TransitClass(class, bytes int, rng *rand.Rand) float64
}

// classesOf reports the class model and class count of a network model: a
// ClassNetworkModel with more than one class, or (nil, 1) for flat models
// — including class models that degenerate to a single class, which keep
// the flat fast paths.
func classesOf(net NetworkModel) (ClassNetworkModel, int) {
	if cn, ok := net.(ClassNetworkModel); ok {
		if n := cn.NetClasses(); n > 1 {
			return cn, n
		}
	}
	return nil, 1
}

// netIsDeterministic reports whether the model opted into the
// DeterministicCosts fast path.
func netIsDeterministic(net NetworkModel) bool {
	if net == nil {
		return false
	}
	dc, ok := net.(DeterministicCosts)
	return ok && dc.CostsDeterministic()
}

// Scheduler backend names for Options.Scheduler.
const (
	// SchedulerGoroutine is the legacy preemptive backend: one goroutine
	// per rank, mutex+condvar message handoff, optional watchdog.
	SchedulerGoroutine = "goroutine"
	// SchedulerEvent is the cooperative virtual-time backend: a
	// single-threaded run loop ordered by a virtual-clock event heap,
	// lock-free queues, deterministic output, exact deadlock detection.
	SchedulerEvent = "event"
)

// Options configure a World.
type Options struct {
	Net     NetworkModel  // nil: zero-cost (functional) transport
	Noise   ComputeNoise  // nil: charges applied exactly
	Seed    int64         // base seed for per-rank RNG streams
	Timeout time.Duration // 0: no watchdog; otherwise abort stalled runs (goroutine backend only)
	// Scheduler selects the execution backend: SchedulerGoroutine (the
	// default when empty) or SchedulerEvent. See the package comment.
	Scheduler string
	// Delays are injected one-off delays (fault injection); each charges
	// extra virtual time to one rank immediately before one of its
	// recordable operations. All backends apply them identically.
	Delays []Delay
	// Fails are injected fail-stop failures; each kills one rank
	// immediately before one of its recordable operations and recovers it
	// from its last checkpoint (Comm.Checkpoint) with a restart charge.
	// All backends apply them identically; see failstop.go.
	Fails []FailStop
	// FailLog, when non-nil, records every applied failure of the run
	// (reset by Run/Replay), one slot per Fails entry.
	FailLog *FailLog
	// Probe, when non-nil, records per-rank clock and idle-time timelines
	// at every collective generation during the run (reset by Run/Replay).
	Probe *RunProbe
}

// message is one in-flight point-to-point message.
type message struct {
	src   int
	tag   int
	bytes int
	data  []float64
	avail float64 // virtual time at which the receiver may consume it
}

// inbox is a rank's incoming message queue. Senders append under the lock;
// receivers wait on the condition variable for a matching (src, tag).
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

// World is a fixed-size group of ranks. A world may be Run once; Reset
// returns it to its initial state for another Run, reusing all internal
// storage (rank records, message streams, heap, RNG state), which is what
// lets callers pool worlds across evaluations with zero steady-state
// allocations per message operation.
type World struct {
	n      int
	opts   Options
	detNet bool              // opts.Net opted into the DeterministicCosts fast path
	cnet   ClassNetworkModel // opts.Net with >1 (src,dst) cost class; nil for flat
	ran    bool              // set by Run; cleared by Reset
	boxes  []inbox
	clocks []float64
	coll   collective
	abort  atomic.Bool
	ops    atomic.Int64 // progress counter for the watchdog
	ev     *evWorld     // the persistent event-scheduler instance (event and trace backends)

	// Trace-backend state: the recorder is non-nil only during a recording
	// run; the trace is captured by the first Run and replayed by the
	// Replayer on every later Run (see trace.go).
	rec   *traceRec
	trace *Trace
	rep   *Replayer

	// Parameter tables read by ChargeParam/SendParam (SetParams) and the
	// mark slots written by Comm.Mark.
	paramCharges []float64
	paramSizes   []int
	marks        [MaxMarks]float64

	// rkDelays and rkFails are Options.Delays / Options.Fails partitioned
	// into per-rank op-ordered queues; Comms consume private cursors into
	// them, so the partitions survive Reset without rebuilding.
	rkDelays [][]Delay
	rkFails  [][]failCursor

	// Goroutine-backend pooled per-run state, allocated once in NewWorld
	// and reused across Reset+Run cycles so pooled worlds on this backend
	// stop paying per-rank Comm (and retained-RNG) allocations per Run.
	// gbodies are pre-built argless rank bodies — spawning them allocates
	// no closure — reading the current run's rank function from gfn.
	gcomms  []Comm
	gerrs   []error
	gbodies []func()
	gwg     sync.WaitGroup
	gfn     func(c *Comm) error
}

// NewWorld creates a world of n ranks. n must be positive.
func NewWorld(n int, opts Options) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mp: world size must be positive, got %d", n)
	}
	switch opts.Scheduler {
	case "", SchedulerGoroutine, SchedulerEvent, SchedulerTrace:
	default:
		return nil, fmt.Errorf("mp: unknown scheduler %q (want %q, %q or %q)",
			opts.Scheduler, SchedulerGoroutine, SchedulerEvent, SchedulerTrace)
	}
	if err := validDelays(n, opts.Delays); err != nil {
		return nil, err
	}
	if err := validFailStops(n, opts.Fails); err != nil {
		return nil, err
	}
	w := &World{n: n, opts: opts, clocks: make([]float64, n)}
	w.detNet = netIsDeterministic(opts.Net)
	w.cnet, _ = classesOf(opts.Net)
	w.rkDelays = rankDelays(n, opts.Delays)
	w.rkFails = rankFails(n, opts.Fails)
	if opts.Scheduler == SchedulerEvent || opts.Scheduler == SchedulerTrace {
		// The event backend has its own per-rank streams and lock-free
		// collective; it is built once here and pooled across Runs. The
		// trace backend records its first Run on the same machinery.
		w.ev = newEvWorld(w)
	} else {
		w.boxes = make([]inbox, n)
		for i := range w.boxes {
			w.boxes[i].cond = sync.NewCond(&w.boxes[i].mu)
		}
		w.coll.init(n, opts.Seed)
		w.gcomms = make([]Comm, n)
		w.gerrs = make([]error, n)
		w.gbodies = make([]func(), n)
		for r := 0; r < n; r++ {
			rank := r
			w.gbodies[rank] = func() { w.runRankGoroutine(rank) }
		}
	}
	return w, nil
}

// Reset returns a finished (or fresh) world to its initial state so Run can
// be called again: clocks to zero, per-rank RNG streams back to their seeds,
// message queues drained, collective generations rewound. All internal
// storage is retained, so a Reset+Run cycle on a warmed world performs zero
// steady-state heap allocations per message operation. Reset also re-reads
// whether Options.Net opts into the DeterministicCosts fast path, so pooled
// worlds may swap the model behind an indirection between runs. It must not
// be called while a Run is in progress.
func (w *World) Reset() {
	w.ran = false
	w.detNet = netIsDeterministic(w.opts.Net)
	w.cnet, _ = classesOf(w.opts.Net)
	for i := range w.clocks {
		w.clocks[i] = 0
	}
	for i := range w.marks {
		w.marks[i] = 0
	}
	w.abort.Store(false)
	w.ops.Store(0)
	if w.ev != nil {
		w.ev.reset()
		return
	}
	for i := range w.boxes {
		b := &w.boxes[i]
		b.mu.Lock()
		for j := range b.queue {
			b.queue[j].data = nil
		}
		b.queue = b.queue[:0]
		b.mu.Unlock()
	}
	w.coll.reset(w.n, w.opts.Seed)
}

// initComm (re)initialises a rank's Comm for a fresh run. The RNG object is
// retained across resets and lazily reseeded on first use, so untouched
// streams (the common case under deterministic cost models) cost nothing.
func (w *World) initComm(c *Comm, rank int) {
	c.w = w
	c.rank = rank
	c.clock = 0
	c.seed = w.opts.Seed + int64(rank)*0x9E3779B9
	c.rngOK = false
	c.det = w.detNet
	c.cnet = w.cnet
	c.sendC = sizeCost{bytes: -1}
	c.recvC = sizeCost{bytes: -1}
	c.transC = sizeCost{bytes: -1}
	c.bcastRoot = false
	c.opn = 0
	c.idle = 0
	c.dq = nil
	if w.rkDelays != nil {
		c.dq = w.rkDelays[rank]
	}
	c.fq = nil
	if w.rkFails != nil {
		c.fq = w.rkFails[rank]
	}
	c.lastCkpt = 0
	c.inj = len(c.dq) > 0 || len(c.fq) > 0
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.n }

// Makespan returns the maximum final virtual clock across ranks after Run
// has returned. With no network model and no charges it is zero.
func (w *World) Makespan() float64 {
	m := 0.0
	for _, c := range w.clocks {
		m = math.Max(m, c)
	}
	return m
}

// Clock returns the final virtual clock of a rank after Run has returned.
func (w *World) Clock(rank int) float64 { return w.clocks[rank] }

// errAborted is the panic value used to unwind blocked ranks when the
// watchdog fires; Run converts it into an error.
var errAborted = errors.New("mp: run aborted by watchdog (possible deadlock)")

// Run executes f once per rank under the configured scheduler backend and
// waits for all ranks. The first non-nil error (or recovered panic) is
// returned. Final virtual clocks remain available via Clock/Makespan. A
// world runs once; call Reset before running it again.
//
// On the trace backend the first Run executes f for real (recording the
// communication script); every later Run replays the recorded script as a
// timing replay — f is not executed again and must be structurally
// identical to the recorded program. Call DiscardTrace to re-record.
func (w *World) Run(f func(c *Comm) error) error {
	if w.ran {
		return errors.New("mp: world already run; call Reset before reusing it")
	}
	w.ran = true
	if p := w.opts.Probe; p != nil {
		p.reset(w.n)
	}
	if l := w.opts.FailLog; l != nil {
		l.reset(len(w.opts.Fails))
	}
	switch w.opts.Scheduler {
	case SchedulerEvent:
		return w.runEvent(f)
	case SchedulerTrace:
		if w.trace == nil {
			t, err := w.recordRun(f)
			if err != nil {
				return err
			}
			w.trace = t
			return nil
		}
		return w.replayRun()
	}
	return w.runGoroutine(f)
}

// recordRun executes f on the event machinery with the recorder active;
// on success the recorded trace is returned. A failed recording (deadlock,
// rank error, panic) stores nothing, so the next Run records again.
func (w *World) recordRun(f func(c *Comm) error) (*Trace, error) {
	w.rec = newTraceRec(w.n)
	err := w.runEvent(f)
	rec := w.rec
	w.rec = nil
	if err != nil {
		return nil, err
	}
	return rec.build(), nil
}

// replayRun replays the recorded trace with the world's current options
// and parameter tables, publishing clocks and marks on the World.
func (w *World) replayRun() error {
	if w.rep == nil {
		w.rep = NewReplayer()
	}
	err := w.rep.Replay(w.trace, w.opts, ReplayParams{Charges: w.paramCharges, Sizes: w.paramSizes})
	if err != nil {
		return err
	}
	for i := range w.clocks {
		w.clocks[i] = w.rep.rk[i].clock
	}
	for i, m := range w.rep.marks {
		if i < MaxMarks {
			w.marks[i] = m
		}
	}
	return nil
}

// RunRecorded runs f once like Run while recording each rank's operation
// sequence, returning the trace for replay elsewhere (NewReplayer). It is
// available on the event and trace backends; the world's clocks are valid
// afterwards exactly as for Run.
func (w *World) RunRecorded(f func(c *Comm) error) (*Trace, error) {
	if w.ran {
		return nil, errors.New("mp: world already run; call Reset before reusing it")
	}
	if w.ev == nil {
		return nil, errors.New("mp: RunRecorded requires the event or trace scheduler backend")
	}
	w.ran = true
	if p := w.opts.Probe; p != nil {
		p.reset(w.n)
	}
	if l := w.opts.FailLog; l != nil {
		l.reset(len(w.opts.Fails))
	}
	return w.recordRun(f)
}

// Trace returns the script recorded by a trace-backend world's first Run,
// or nil before it.
func (w *World) Trace() *Trace { return w.trace }

// DiscardTrace drops a trace world's recorded script so the next Run
// (after Reset) records afresh — required when the program's structure
// changes between runs.
func (w *World) DiscardTrace() { w.trace = nil }

// SetParams attaches the parameter tables read by Comm.ChargeParam and
// Comm.SendParam (and by trace replays of programs recorded with them).
// The slices are aliased, not copied; callers may swap tables between
// Reset+Run cycles to re-price a recorded program.
func (w *World) SetParams(charges []float64, sizes []int) {
	w.paramCharges = charges
	w.paramSizes = sizes
}

// Marks returns the world's mark slots (Comm.Mark) after Run; unwritten
// slots are zero. The returned slice aliases the world's storage.
func (w *World) Marks() []float64 { return w.marks[:] }

// runRankGoroutine is one rank's pre-built goroutine body: its Comm comes
// from the world's pooled gcomms array (retaining the rank's RNG object
// across runs) and its result lands in the pooled gerrs slot.
func (w *World) runRankGoroutine(rank int) {
	defer w.gwg.Done()
	defer func() {
		if p := recover(); p != nil {
			if err, ok := p.(error); ok && errors.Is(err, errAborted) {
				w.gerrs[rank] = err
				return
			}
			w.gerrs[rank] = fmt.Errorf("mp: rank %d panicked: %v", rank, p)
		}
	}()
	c := &w.gcomms[rank]
	w.initComm(c, rank)
	w.gerrs[rank] = w.gfn(c)
	w.clocks[rank] = c.clock
}

// runGoroutine is the legacy backend: one goroutine per rank. All per-run
// state (Comms, error slots, rank bodies) is pooled on the World, so a
// warmed Reset+Run cycle without a watchdog performs no per-rank heap
// allocations; only the optional watchdog path allocates (its channel,
// ticker and closure).
func (w *World) runGoroutine(f func(c *Comm) error) error {
	for i := range w.gerrs {
		w.gerrs[i] = nil
	}
	w.gfn = f
	w.gwg.Add(w.n)
	for r := 0; r < w.n; r++ {
		go w.gbodies[r]()
	}

	if w.opts.Timeout > 0 {
		done := make(chan struct{})
		go func() { w.gwg.Wait(); close(done) }()
		ticker := time.NewTicker(w.opts.Timeout)
		defer ticker.Stop()
		last := w.ops.Load()
	watch:
		for {
			select {
			case <-done:
				break watch
			case <-ticker.C:
				now := w.ops.Load()
				if now == last {
					w.abort.Store(true)
					for i := range w.boxes {
						w.boxes[i].cond.Broadcast()
					}
					w.coll.broadcastAbort()
					<-done
					break watch
				}
				last = now
			}
		}
	} else {
		w.gwg.Wait()
	}
	w.gfn = nil

	for _, err := range w.gerrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sizeCost memoizes one priced (class, size) pair for one cost curve;
// bytes == -1 marks it empty (flat models always price class 0).
// Block-structured workloads send a handful of distinct sizes, so a
// single entry hits almost always and replaces an interface dispatch per
// operation with two integer compares.
type sizeCost struct {
	bytes int
	class int
	sec   float64
}

// Comm is a rank's handle on the world. It is valid only inside the function
// passed to Run and must not be shared across goroutines.
type Comm struct {
	w         *World
	rank      int
	clock     float64
	seed      int64
	rng       *rand.Rand        // materialised lazily; see rand()
	rngOK     bool              // rng is seeded for the current run
	det       bool              // world's net model declared DeterministicCosts
	cnet      ClassNetworkModel // world's net model with >1 cost class; nil flat
	bcastRoot bool              // set while this rank is the root of a Bcast

	// Per-curve single-size memos for the DeterministicCosts fast path.
	sendC, recvC, transC sizeCost

	// Fault-injection cursors (Options.Delays / Options.Fails) and probe
	// idle accumulator: opn counts recordable operations, dq/fq are the
	// rank's pending delays and failures, lastCkpt is the clock of the
	// most recent Comm.Checkpoint (the failure rewind target), and inj
	// gates the whole machinery behind one predictable branch per op.
	opn      int32
	dq       []Delay
	fq       []failCursor
	lastCkpt float64
	idle     float64
	inj      bool
}

// injectFaults charges every injected delay and fail-stop failure
// scheduled at the rank's current operation index and advances the
// counter. Each recordable operation calls it exactly once, mirroring
// what a trace records, so op indices mean the same instant on every
// backend. Delays land first: their damage is part of the segment a
// co-located failure re-executes.
func (c *Comm) injectFaults() {
	for len(c.dq) > 0 && c.dq[0].Op == int(c.opn) {
		c.clock += c.dq[0].Seconds
		c.dq = c.dq[1:]
	}
	for len(c.fq) > 0 && c.fq[0].op == c.opn {
		f := c.fq[0]
		c.fq = c.fq[1:]
		rework := c.clock - c.lastCkpt
		if l := c.w.opts.FailLog; l != nil {
			l.events[f.slot] = FailEvent{
				Rank: c.rank, Op: int(f.op), At: c.clock,
				LastCkpt: c.lastCkpt, Rework: rework, Restart: f.restart,
				Applied: true,
			}
		}
		c.clock += rework + f.restart
	}
	c.opn++
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.n }

// Now returns the rank's current virtual clock in seconds. It must stay a
// leaf accessor (no interface hops, nothing that defeats inlining): it sits
// on the per-block fast path of template evaluation.
func (c *Comm) Now() float64 { return c.clock }

// rand returns the rank's RNG stream, materialising or reseeding it on
// first use in a run. Deferring this keeps RNG-free runs (deterministic
// cost models, no noise) from paying the ~5KB source allocation and
// 607-step seeding scramble per rank per run.
func (c *Comm) rand() *rand.Rand {
	if !c.rngOK {
		if c.rng == nil {
			c.rng = rand.New(rand.NewSource(c.seed))
		} else {
			c.rng.Seed(c.seed)
		}
		c.rngOK = true
	}
	return c.rng
}

// Rand returns the rank's deterministic RNG stream.
func (c *Comm) Rand() *rand.Rand { return c.rand() }

// Charge advances the rank's virtual clock by the given compute time,
// applying the world's noise model if any. Negative charges are ignored.
func (c *Comm) Charge(seconds float64) {
	if seconds <= 0 {
		return
	}
	if rec := c.w.rec; rec != nil {
		// Recorded pre-noise: replays re-perturb from the rank stream, so
		// the draw order (and every later draw) matches the live run.
		rec.chargeLit(c.rank, seconds, c.w.opts.Noise != nil)
	}
	if c.inj {
		c.injectFaults()
	}
	if n := c.w.opts.Noise; n != nil {
		seconds = n.Perturb(seconds, c.rand())
	}
	c.clock += seconds
}

// ChargeExact advances the clock without noise; used by model evaluation,
// which is deterministic by definition. Like Now it must stay a leaf
// function — it is called once per (angle, k) block per rank.
func (c *Comm) ChargeExact(seconds float64) {
	if seconds > 0 {
		if rec := c.w.rec; rec != nil {
			rec.chargeLit(c.rank, seconds, false)
		}
		if c.inj {
			c.injectFaults()
		}
		c.clock += seconds
	}
}

// ChargeParam advances the clock by entry i of the world's charge
// parameter table (World.SetParams), applying the world's noise model if
// any (model evaluation runs with no noise configured, so its charges
// stay exact). Unlike ChargeExact the table *index* — not the value — is
// what a trace records, so a recorded program replays correctly under
// swapped tables.
func (c *Comm) ChargeParam(i int) {
	if rec := c.w.rec; rec != nil {
		rec.chargeParam(c.rank, i)
	}
	if c.inj {
		c.injectFaults()
	}
	if s := c.w.paramCharges[i]; s > 0 {
		if n := c.w.opts.Noise; n != nil {
			s = n.Perturb(s, c.rand())
		}
		c.clock += s
	}
}

// SendParam is SendN with the wire size drawn from entry i of the world's
// size parameter table (World.SetParams); traces record the index.
func (c *Comm) SendParam(dst, tag, i int) {
	c.sendN(dst, tag, c.w.paramSizes[i], nil, int32(i))
}

// Mark records the rank's current clock in the world's mark slot (read
// back via World.Marks after Run). Slots are single-writer: at most one
// rank may write a given slot during a run. slot must be < MaxMarks.
func (c *Comm) Mark(slot int) {
	if rec := c.w.rec; rec != nil {
		rec.mark(c.rank, slot)
	}
	if c.inj {
		c.injectFaults()
	}
	c.w.marks[slot] = c.clock
}

// Checkpoint is a recordable operation marking a recovery point: it
// charges entry i of the world's charge parameter table as checkpoint
// write cost — exactly, since checkpoint I/O is not subject to compute
// noise — and then pins the rank's clock as the rewind target of any later
// fail-stop failure (Options.Fails). Traces record the table index, so a
// recorded program replays correctly under swapped checkpoint costs.
func (c *Comm) Checkpoint(i int) {
	if rec := c.w.rec; rec != nil {
		rec.ckpt(c.rank, i)
	}
	if c.inj {
		c.injectFaults()
	}
	if s := c.w.paramCharges[i]; s > 0 {
		c.clock += s
	}
	c.lastCkpt = c.clock
}

// Send delivers data to dst under tag. It blocks only for the (virtual) send
// overhead, like an MPI standard-mode send of a buffered message. The wire
// size is 8*len(data) bytes.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.SendN(dst, tag, 8*len(data), data)
}

// SendN is Send with an explicit wire size, allowing skeleton executions to
// charge realistic message costs without materialising payloads. data may be
// nil; if not nil it is copied so the caller may reuse the buffer.
func (c *Comm) SendN(dst, tag, bytes int, data []float64) {
	c.sendN(dst, tag, bytes, data, -1)
}

// sendN is the shared send path; paramIdx >= 0 marks a SendParam whose
// size-table index (rather than the literal size) is recorded in traces.
func (c *Comm) sendN(dst, tag, bytes int, data []float64, paramIdx int32) {
	if dst < 0 || dst >= c.w.n {
		panic(fmt.Errorf("mp: rank %d sending to invalid rank %d", c.rank, dst))
	}
	if dst == c.rank {
		panic(fmt.Errorf("mp: rank %d sending to itself", c.rank))
	}
	if rec := c.w.rec; rec != nil {
		rec.send(c.rank, dst, tag, bytes, paramIdx)
	}
	if c.inj {
		c.injectFaults()
	}
	start := c.clock
	avail := start
	if net := c.w.opts.Net; net != nil {
		cls := 0
		if c.cnet != nil {
			cls = c.cnet.ClassOf(c.rank, dst)
		}
		if c.det {
			if c.sendC.bytes != bytes || c.sendC.class != cls {
				c.sendC = sizeCost{bytes: bytes, class: cls, sec: c.sendCost(net, cls, bytes, nil)}
			}
			c.clock = start + c.sendC.sec
			if c.transC.bytes != bytes || c.transC.class != cls {
				c.transC = sizeCost{bytes: bytes, class: cls, sec: c.transitCost(net, cls, bytes, nil)}
			}
			avail = start + c.transC.sec
		} else {
			rng := c.rand()
			c.clock = start + c.sendCost(net, cls, bytes, rng)
			avail = start + c.transitCost(net, cls, bytes, rng)
		}
	}
	var cp []float64
	if data != nil {
		cp = make([]float64, len(data))
		copy(cp, data)
	}
	if ev := c.w.ev; ev != nil {
		ev.deliver(dst, qkey(c.rank, tag), bytes, cp, avail)
		return
	}
	m := message{src: c.rank, tag: tag, bytes: bytes, data: cp, avail: avail}
	b := &c.w.boxes[dst]
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
	c.w.ops.Add(1)
}

// sendCost, transitCost and recvCost price one operation at the resolved
// cost class: through the class methods for multi-class models, the
// size-only NetworkModel methods otherwise. They stay leaf-sized so the
// common flat path inlines to the original single interface dispatch.
func (c *Comm) sendCost(net NetworkModel, cls, bytes int, rng *rand.Rand) float64 {
	if c.cnet != nil {
		return c.cnet.SendOverheadClass(cls, bytes, rng)
	}
	return net.SendOverhead(bytes, rng)
}

func (c *Comm) transitCost(net NetworkModel, cls, bytes int, rng *rand.Rand) float64 {
	if c.cnet != nil {
		return c.cnet.TransitClass(cls, bytes, rng)
	}
	return net.Transit(bytes, rng)
}

func (c *Comm) recvCost(net NetworkModel, cls, bytes int, rng *rand.Rand) float64 {
	if c.cnet != nil {
		return c.cnet.RecvOverheadClass(cls, bytes, rng)
	}
	return net.RecvOverhead(bytes, rng)
}

// Recv blocks until a message from src with the given tag is available and
// returns its payload (nil for payload-free sends). Messages between a given
// pair of ranks with the same tag are non-overtaking.
func (c *Comm) Recv(src, tag int) []float64 {
	data, _ := c.RecvN(src, tag)
	return data
}

// RecvN is Recv that also reports the wire size of the received message.
func (c *Comm) RecvN(src, tag int) ([]float64, int) {
	if src < 0 || src >= c.w.n {
		panic(fmt.Errorf("mp: rank %d receiving from invalid rank %d", c.rank, src))
	}
	if rec := c.w.rec; rec != nil {
		rec.recv(c.rank, src, tag)
	}
	if c.inj {
		c.injectFaults()
	}
	var (
		data  []float64
		bytes int
		avail float64
	)
	if ev := c.w.ev; ev != nil {
		data, bytes, avail = ev.receive(c, src, tag)
	} else {
		var m message
		b := &c.w.boxes[c.rank]
		b.mu.Lock()
		for {
			if c.w.abort.Load() {
				b.mu.Unlock()
				panic(errAborted)
			}
			found := -1
			for i := range b.queue {
				if b.queue[i].src == src && b.queue[i].tag == tag {
					found = i
					break
				}
			}
			if found >= 0 {
				m = b.queue[found]
				b.queue = append(b.queue[:found], b.queue[found+1:]...)
				break
			}
			b.cond.Wait()
		}
		b.mu.Unlock()
		c.w.ops.Add(1)
		data, bytes, avail = m.data, m.bytes, m.avail
	}
	// Causality holds regardless of the cost model: the receive cannot
	// complete before the message is available.
	if avail > c.clock {
		if c.w.opts.Probe != nil {
			c.idle += avail - c.clock
		}
		c.clock = avail
	}
	if net := c.w.opts.Net; net != nil {
		cls := 0
		if c.cnet != nil {
			cls = c.cnet.ClassOf(src, c.rank)
		}
		if c.det {
			if c.recvC.bytes != bytes || c.recvC.class != cls {
				c.recvC = sizeCost{bytes: bytes, class: cls, sec: c.recvCost(net, cls, bytes, nil)}
			}
			c.clock += c.recvC.sec
		} else {
			c.clock += c.recvCost(net, cls, bytes, c.rand())
		}
	}
	return data, bytes
}

// Barrier blocks until all ranks have entered it. Under a network model all
// clocks synchronise to the latest participant plus the reduction cost.
func (c *Comm) Barrier() {
	c.reduce(nil, 0)
}

// AllreduceMax returns the maximum of x across all ranks; all clocks
// synchronise as for Barrier.
func (c *Comm) AllreduceMax(x float64) float64 {
	out := c.reduce([]float64{x}, reduceMax)
	return out[0]
}

// AllreduceSum returns the sum of x across all ranks.
func (c *Comm) AllreduceSum(x float64) float64 {
	out := c.reduce([]float64{x}, reduceSum)
	return out[0]
}

// AllreduceSumSlice element-wise sums xs across ranks; all ranks must pass
// slices of the same length. The result is a fresh slice.
func (c *Comm) AllreduceSumSlice(xs []float64) []float64 {
	return c.reduce(xs, reduceSum)
}

// Bcast distributes the root rank's values to every rank. All ranks must
// pass slices of the same length (as in MPI, receivers know the message
// shape); the result is a fresh slice holding the root's data. Clocks
// synchronise as for the other collectives.
func (c *Comm) Bcast(root int, xs []float64) []float64 {
	if root < 0 || root >= c.w.n {
		panic(fmt.Errorf("mp: rank %d broadcasting from invalid root %d", c.rank, root))
	}
	c.bcastRoot = c.rank == root
	defer func() { c.bcastRoot = false }()
	return c.reduce(xs, reduceRoot)
}

const (
	reduceSum = iota + 1
	reduceMax
	reduceRoot
)

// collective implements generation-counted full-world reductions.
type collective struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     int
	acc     []float64
	op      int
	maxTime float64
	result  []float64
	done    float64 // completion clock of the current generation
	aborted bool
	// rng prices collective costs. A dedicated stream (rather than the
	// closing rank's) keeps simulations deterministic: which rank arrives
	// last depends on goroutine scheduling.
	rng *rand.Rand
}

func (cl *collective) init(n int, seed int64) {
	cl.n = n
	cl.cond = sync.NewCond(&cl.mu)
	cl.rng = rand.New(rand.NewSource(seed ^ 0x1F3D5B79))
}

// reset rewinds the collective for a world Reset, keeping the accumulator
// storage and reseeding the pricing stream in place.
func (cl *collective) reset(n int, seed int64) {
	cl.mu.Lock()
	cl.n = n
	cl.arrived = 0
	cl.gen = 0
	cl.acc = cl.acc[:0]
	cl.op = 0
	cl.maxTime = 0
	cl.result = nil
	cl.done = 0
	cl.aborted = false
	cl.rng.Seed(seed ^ 0x1F3D5B79)
	cl.mu.Unlock()
}

func (cl *collective) broadcastAbort() {
	cl.mu.Lock()
	cl.aborted = true
	cl.mu.Unlock()
	cl.cond.Broadcast()
}

// reduceAccumulate folds one rank's contribution into the accumulator.
// root marks the calling rank as the Bcast root.
func reduceAccumulate(acc, data []float64, op int, root bool) {
	for i, v := range data {
		switch op {
		case reduceSum:
			acc[i] += v
		case reduceMax:
			acc[i] = math.Max(acc[i], v)
		case reduceRoot:
			if root {
				acc[i] = v
			}
		}
	}
}

// reduce performs a blocking all-reduce. op 0 means barrier (data ignored).
func (c *Comm) reduce(data []float64, op int) []float64 {
	if rec := c.w.rec; rec != nil {
		rec.reduce(c.rank, len(data))
	}
	if c.inj {
		c.injectFaults()
	}
	if ev := c.w.ev; ev != nil {
		return ev.reduce(c, data, op)
	}
	cl := &c.w.coll
	cl.mu.Lock()
	if cl.aborted {
		cl.mu.Unlock()
		panic(errAborted)
	}
	myGen := cl.gen
	if p := c.w.opts.Probe; p != nil {
		// Serialized by cl.mu; the generation index makes rows identical
		// across backends even though arrival order is nondeterministic.
		p.record(myGen, c.rank, c.clock, c.idle)
	}
	entry := c.clock
	if cl.arrived == 0 {
		cl.op = op
		cl.maxTime = c.clock
		if data != nil {
			cl.acc = append(cl.acc[:0], data...)
		} else {
			cl.acc = cl.acc[:0]
		}
	} else {
		if op != cl.op {
			cl.mu.Unlock()
			panic(fmt.Errorf("mp: rank %d joined collective with mismatched op", c.rank))
		}
		if data != nil {
			if len(data) != len(cl.acc) {
				cl.mu.Unlock()
				panic(fmt.Errorf("mp: rank %d collective length mismatch: %d vs %d", c.rank, len(data), len(cl.acc)))
			}
			reduceAccumulate(cl.acc, data, op, c.bcastRoot)
		}
		cl.maxTime = math.Max(cl.maxTime, c.clock)
	}
	cl.arrived++
	if cl.arrived == cl.n {
		// Last participant closes the generation and prices the collective.
		cl.result = append([]float64(nil), cl.acc...)
		cl.done = cl.maxTime
		if net := c.w.opts.Net; net != nil {
			bytes := 8 * len(cl.acc)
			cl.done += net.ReduceCost(cl.n, bytes, cl.rng)
		}
		cl.arrived = 0
		cl.gen++
		cl.cond.Broadcast()
	} else {
		for cl.gen == myGen && !cl.aborted {
			cl.cond.Wait()
		}
		if cl.aborted {
			cl.mu.Unlock()
			panic(errAborted)
		}
	}
	res := cl.result
	// A collective is a synchronisation point under any cost model. The
	// idle delta reads cl.done, not cl.maxTime: a woken waiter may observe
	// the *next* generation's partially-updated maxTime, but done is not
	// rewritten until this waiter has participated again.
	if c.w.opts.Probe != nil {
		c.idle += cl.done - entry
	}
	c.clock = cl.done
	cl.mu.Unlock()
	c.w.ops.Add(1)
	return res
}

// RunWorld is a convenience wrapper: create a world, run f, and return the
// world for clock inspection along with any error.
func RunWorld(n int, opts Options, f func(c *Comm) error) (*World, error) {
	w, err := NewWorld(n, opts)
	if err != nil {
		return nil, err
	}
	if err := w.Run(f); err != nil {
		return w, err
	}
	return w, nil
}

// SortedClocks returns the final per-rank clocks in ascending order; useful
// for load-imbalance diagnostics in tests and reports.
func (w *World) SortedClocks() []float64 {
	out := append([]float64(nil), w.clocks...)
	sort.Float64s(out)
	return out
}
