package mp

import (
	"fmt"
	"math"
	"testing"
)

func TestIsendIrecvDelivery(t *testing.T) {
	_, err := RunWorld(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 5, 8, []float64{42})
			if !req.Done() {
				return fmt.Errorf("standard-mode Isend must complete immediately")
			}
			req.Wait() // idempotent
		} else {
			req := c.Irecv(0, 5)
			if req.Done() {
				return fmt.Errorf("Irecv must not complete at post time")
			}
			data, bytes := req.Wait()
			if len(data) != 1 || data[0] != 42 || bytes != 8 {
				return fmt.Errorf("payload = %v (%d bytes)", data, bytes)
			}
			if !req.Done() {
				return fmt.Errorf("request not done after Wait")
			}
			// Second Wait returns the cached result.
			d2, b2 := req.Wait()
			if len(d2) != 1 || b2 != 8 {
				return fmt.Errorf("repeated Wait = %v (%d)", d2, b2)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvInvalidSource(t *testing.T) {
	err := mustWorld(t, 1).Run(func(c *Comm) error {
		c.Irecv(7, 0)
		return nil
	})
	if err == nil {
		t.Fatal("expected error for invalid source")
	}
}

func TestWaitPlacementControlsExposedTransit(t *testing.T) {
	// The point of nonblocking receives in the virtual-time model: a wait
	// placed after useful work no longer exposes the transit.
	net := alphaBeta{alpha: 0.5} // transit 1s
	w, err := NewWorld(2, Options{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 0, 8, nil)
		} else {
			req := c.Irecv(0, 0)
			c.ChargeExact(10) // independent work covering the transit
			req.Wait()
			// send at 0.5 overhead; avail = 0 + 1.0; receiver busy till 10,
			// then pays only the receive overhead.
			if got := c.Now(); math.Abs(got-10.5) > 1e-12 {
				return fmt.Errorf("clock = %v, want 10.5", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllOrder(t *testing.T) {
	_, err := RunWorld(2, Options{}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 1, 8, []float64{1})
			c.Isend(1, 2, 8, []float64{2})
		} else {
			r1 := c.Irecv(0, 1)
			r2 := c.Irecv(0, 2)
			WaitAll(r2, nil, r1) // nil entries tolerated, any order
			d1, _ := r1.Wait()
			d2, _ := r2.Wait()
			if d1[0] != 1 || d2[0] != 2 {
				return fmt.Errorf("got %v %v", d1, d2)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
