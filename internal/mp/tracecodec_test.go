package mp

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"testing"

	"pacesweep/internal/artifact"
)

// recordWavefrontTrace records the miniature SWEEP3D pipeline with
// parameterised charges and sizes — every op kind a real template records.
func recordWavefrontTrace(t *testing.T) (*Trace, NetworkModel, ReplayParams) {
	t.Helper()
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	w, err := NewWorld(12, Options{Net: net, Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	params := ReplayParams{
		Charges: []float64{1e-4, 2e-4, 3e-4},
		Sizes:   []int{1200, 960},
	}
	w.SetParams(params.Charges, params.Sizes)
	prog := func(c *Comm) error {
		px, py := 4, 3
		ix, iy := c.Rank()%px, c.Rank()/px
		for it := 0; it < 3; it++ {
			c.ChargeParam(c.Rank() % 3)
			if ix > 0 {
				c.RecvN(iy*px+ix-1, 1)
			}
			if iy > 0 {
				c.RecvN((iy-1)*px+ix, 2)
			}
			c.ChargeExact(2e-4)
			if ix < px-1 {
				c.SendParam(iy*px+ix+1, 1, 0)
			}
			if iy < py-1 {
				c.SendParam((iy+1)*px+ix, 2, 1)
			}
			c.Mark(0)
			c.AllreduceMax(float64(c.Rank()))
		}
		c.Mark(1)
		return nil
	}
	tr, err := w.RunRecorded(prog)
	if err != nil {
		t.Fatal(err)
	}
	return tr, net, params
}

// TestTraceCodecRoundTrip pins the codec contract: encode→decode→encode is
// byte-identical, and the decoded trace is structurally equal to its
// source.
func TestTraceCodecRoundTrip(t *testing.T) {
	tr, _, _ := recordWavefrontTrace(t)
	data := tr.EncodeBinary()
	got, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("decoded trace differs:\n got %+v\nwant %+v", got, tr)
	}
	if !bytes.Equal(got.EncodeBinary(), data) {
		t.Fatal("encode→decode→encode is not byte-identical")
	}
}

// TestTraceCodecReplayBitIdentical replays a decoded trace beside its
// source under identical options and parameter tables: every rank clock,
// every mark and the makespan must not move a bit.
func TestTraceCodecReplayBitIdentical(t *testing.T) {
	tr, net, params := recordWavefrontTrace(t)
	dec, err := DecodeTrace(tr.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	ref, got := NewReplayer(), NewReplayer()
	if err := ref.Replay(tr, Options{Net: net}, params); err != nil {
		t.Fatal(err)
	}
	if err := got.Replay(dec, Options{Net: net}, params); err != nil {
		t.Fatal(err)
	}
	if ref.Makespan() != got.Makespan() {
		t.Fatalf("makespan %v != %v", got.Makespan(), ref.Makespan())
	}
	for r := 0; r < tr.Ranks(); r++ {
		if ref.Clock(r) != got.Clock(r) {
			t.Fatalf("clock[%d] %v != %v", r, got.Clock(r), ref.Clock(r))
		}
	}
	rm, gm := ref.Marks(), got.Marks()
	for i := range rm {
		if rm[i] != gm[i] {
			t.Fatalf("mark[%d] %v != %v", i, gm[i], rm[i])
		}
	}
}

// TestTraceCodecRefusesCorruption flips every byte of a valid artifact and
// truncates it at several points: decode must fail every time — a partial
// trace is never returned.
func TestTraceCodecRefusesCorruption(t *testing.T) {
	tr, _, _ := recordWavefrontTrace(t)
	data := tr.EncodeBinary()

	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x08
		if dec, err := DecodeTrace(bad); err == nil {
			// A flip confined to an unused bit pattern that still checksums
			// differently is impossible: the checksum covers every byte.
			t.Fatalf("bit flip at byte %d decoded: %+v", i, dec)
		}
	}
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if _, err := DecodeTrace(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	if _, err := DecodeTrace(data[:len(data)-3]); !errors.Is(err, artifact.ErrChecksum) {
		t.Fatalf("truncated artifact: err = %v, want ErrChecksum", err)
	}
}

// TestTraceCodecRefusesFutureVersion pins refuse-on-version-mismatch: an
// artifact stamped with a newer codec version must not decode.
func TestTraceCodecRefusesFutureVersion(t *testing.T) {
	tr, _, _ := recordWavefrontTrace(t)
	data := tr.EncodeBinary()
	// Re-wrap the payload under a bumped version with a valid checksum.
	e := artifact.NewEncoder(traceMagic, TraceCodecVersion+1)
	d, err := artifact.NewDecoder(data, traceMagic, TraceCodecVersion)
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	// Simplest valid future-version artifact: empty payload.
	if _, err := DecodeTrace(e.Finish()); !errors.Is(err, artifact.ErrVersionMismatch) {
		t.Fatalf("future version: err = %v, want ErrVersionMismatch", err)
	}
}

// TestSchedulerEquivalenceDecodedTrace is the decoded-trace row of the
// cross-backend equivalence matrix: a trace that went through
// encode→decode must replay bit-identically to the goroutine and event
// backends, including under RNG noise.
func TestSchedulerEquivalenceDecodedTrace(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		opts := Options{
			Net:   alphaBeta{alpha: 2e-5, beta: 1e-8},
			Noise: jitterNoise{0.05},
			Seed:  seed,
		}
		gc := runWavefront(t, SchedulerGoroutine, seed).SortedClocks()

		rec, err := NewWorld(12, Options{Net: opts.Net, Noise: opts.Noise, Seed: seed, Scheduler: SchedulerEvent})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rec.RunRecorded(wavefrontProgram(4, 3, 5))
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeTrace(tr.EncodeBinary())
		if err != nil {
			t.Fatal(err)
		}
		rp := NewReplayer()
		if err := rp.Replay(dec, opts, ReplayParams{}); err != nil {
			t.Fatal(err)
		}
		clocks := make([]float64, dec.Ranks())
		for r := range clocks {
			clocks[r] = rp.Clock(r)
		}
		sort.Float64s(clocks)
		for i := range gc {
			if gc[i] != clocks[i] {
				t.Fatalf("seed %d: clock[%d] goroutine %v != decoded-trace replay %v", seed, i, gc[i], clocks[i])
			}
		}
	}
}
