package mp

import (
	"math/rand"
	"testing"
)

// detAlphaBeta is alphaBeta with the DeterministicCosts opt-in, driving
// the replayer's precomputed-price fast path.
type detAlphaBeta struct{ alphaBeta }

func (detAlphaBeta) CostsDeterministic() bool { return true }

// TestTraceRecordThenReplayDetNet covers the deterministic-cost replay
// fast path: recorded clocks and replayed clocks must match a fresh event
// run bit for bit, across several replays.
func TestTraceRecordThenReplayDetNet(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	prog := wavefrontProgram(4, 3, 4)
	ref, err := NewWorld(12, Options{Net: net, Seed: 11, Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(prog); err != nil {
		t.Fatal(err)
	}
	tw, err := NewWorld(12, Options{Net: net, Seed: 11, Scheduler: SchedulerTrace})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 4; rep++ {
		if rep > 0 {
			tw.Reset()
		}
		if err := tw.Run(prog); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		for i := 0; i < 12; i++ {
			if tw.Clock(i) != ref.Clock(i) {
				t.Fatalf("rep %d: clock[%d] = %v, want %v", rep, i, tw.Clock(i), ref.Clock(i))
			}
		}
	}
	if tr := tw.Trace(); tr == nil || tr.Ranks() != 12 || tr.Ops() == 0 {
		t.Fatalf("trace not captured: %+v", tw.Trace())
	}
}

// TestTraceChunkInterning checks that ranks with identical delta-encoded
// scripts share interned chunks: in a 16-rank ring every interior rank
// records the same ops, so the trace must be far smaller than the raw op
// stream.
func TestTraceChunkInterning(t *testing.T) {
	w, err := NewWorld(16, Options{Scheduler: SchedulerTrace})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(ringProgram(200)); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	if tr.Ops() != 16*200*3 {
		t.Fatalf("ops = %d, want %d", tr.Ops(), 16*200*3)
	}
	// 14 interior ranks share one script; rank 0 and rank 15 differ (ring
	// wrap deltas). Generous bound: interning must cut at least 4x.
	if tr.UniqueOps()*4 > tr.Ops() {
		t.Errorf("chunk interning too weak: %d unique of %d ops", tr.UniqueOps(), tr.Ops())
	}
}

// TestTraceParamReplay is the cost-reparameterisation contract: a program
// recorded through ChargeParam/SendParam replays under swapped tables with
// clocks bit-identical to a live event run using those tables.
func TestTraceParamReplay(t *testing.T) {
	const n = 6
	prog := func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		for i := 0; i < 8; i++ {
			c.ChargeParam(i % 3)
			c.SendParam(next, 0, i%2)
			c.RecvN(prev, 0)
			if i == 4 && c.Rank() == 0 {
				c.Mark(0)
			}
		}
		c.Barrier()
		return nil
	}
	net := detAlphaBeta{alphaBeta{alpha: 1e-5, beta: 3e-9}}
	chargesA := []float64{1e-4, 2e-4, 0}
	sizesA := []int{800, 1600}
	chargesB := []float64{5e-4, 1e-5, 7e-4}
	sizesB := []int{64, 4096}

	run := func(sched string, charges []float64, sizes []int) *World {
		w, err := NewWorld(n, Options{Net: net, Scheduler: sched})
		if err != nil {
			t.Fatal(err)
		}
		w.SetParams(charges, sizes)
		if err := w.Run(prog); err != nil {
			t.Fatal(err)
		}
		return w
	}

	tw := run(SchedulerTrace, chargesA, sizesA) // records under table A
	for _, tab := range []struct {
		charges []float64
		sizes   []int
	}{{chargesA, sizesA}, {chargesB, sizesB}} {
		ref := run(SchedulerEvent, tab.charges, tab.sizes)
		tw.Reset()
		tw.SetParams(tab.charges, tab.sizes)
		if err := tw.Run(prog); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if tw.Clock(i) != ref.Clock(i) {
				t.Fatalf("clock[%d] = %v, want %v", i, tw.Clock(i), ref.Clock(i))
			}
		}
		if tw.Marks()[0] != ref.Marks()[0] {
			t.Fatalf("mark = %v, want %v", tw.Marks()[0], ref.Marks()[0])
		}
	}
}

// TestTraceReplayerShared replays one trace from several Replayers and
// under different parameter tables via the public Replayer API.
func TestTraceReplayerShared(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 1e-5}}
	w, err := NewWorld(4, Options{Net: net, Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	charges := []float64{2e-3}
	w.SetParams(charges, nil)
	prog := func(c *Comm) error {
		if c.Rank() > 0 {
			c.Recv(c.Rank()-1, 0)
		}
		c.ChargeParam(0)
		if c.Rank() < c.Size()-1 {
			c.SendN(c.Rank()+1, 0, 512, nil)
		}
		c.AllreduceMax(0)
		return nil
	}
	tr, err := w.RunRecorded(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Makespan()

	for i := 0; i < 2; i++ {
		rp := NewReplayer()
		if err := rp.Replay(tr, Options{Net: net}, ReplayParams{Charges: charges}); err != nil {
			t.Fatal(err)
		}
		if rp.Makespan() != want {
			t.Fatalf("replayer %d makespan = %v, want %v", i, rp.Makespan(), want)
		}
		// Re-parameterised replay: double the charge, makespan moves.
		if err := rp.Replay(tr, Options{Net: net}, ReplayParams{Charges: []float64{4e-3}}); err != nil {
			t.Fatal(err)
		}
		if rp.Makespan() <= want {
			t.Fatalf("re-priced makespan = %v, want > %v", rp.Makespan(), want)
		}
	}

	// Missing parameter tables must be a validation error, not a panic.
	if err := NewReplayer().Replay(tr, Options{Net: net}, ReplayParams{}); err == nil {
		t.Fatal("expected param-table validation error")
	}
}

// TestTraceFailedRecordingNotStored pins the recording failure contract:
// a deadlocked recording stores no trace, and the world records again
// (successfully) after Reset.
func TestTraceFailedRecordingNotStored(t *testing.T) {
	w, err := NewWorld(2, Options{Scheduler: SchedulerTrace})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Recv(0, 99) // never sent
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected deadlock error from recording run")
	}
	if w.Trace() != nil {
		t.Fatal("failed recording stored a trace")
	}
	w.Reset()
	good := func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendN(1, 0, 64, nil)
		} else {
			c.RecvN(0, 0)
		}
		return nil
	}
	if err := w.Run(good); err != nil {
		t.Fatal(err)
	}
	if w.Trace() == nil {
		t.Fatal("successful recording stored no trace")
	}
	// DiscardTrace forces a re-record.
	w.DiscardTrace()
	w.Reset()
	if err := w.Run(good); err != nil {
		t.Fatal(err)
	}
	if w.Trace() == nil {
		t.Fatal("re-record after DiscardTrace stored no trace")
	}
}

// TestTraceReplayZeroAllocs is the replay-path allocation acceptance,
// mirroring TestEventSteadyStateZeroAllocs: a warmed trace world must
// replay with zero heap allocations for the entire Reset+Run cycle.
func TestTraceReplayZeroAllocs(t *testing.T) {
	w, err := NewWorld(8, Options{
		Net:       alphaBeta{alpha: 1e-6, beta: 1e-9},
		Seed:      7,
		Scheduler: SchedulerTrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := ringProgram(50)
	// Warm: the first run records; the next replays materialise the
	// replayer, its per-rank streams and RNGs.
	for i := 0; i < 3; i++ {
		if i > 0 {
			w.Reset()
		}
		if err := w.Run(prog); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		w.Reset()
		if err := w.Run(prog); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state replay Reset+Run allocations = %v per cycle (%d message ops), want 0", avg, 8*50*2)
	}
}

// TestTraceReplayZeroAllocsDetNet is the same acceptance on the
// deterministic-cost fast path (precomputed price tables, no RNGs).
func TestTraceReplayZeroAllocsDetNet(t *testing.T) {
	w, err := NewWorld(8, Options{
		Net:       detAlphaBeta{alphaBeta{alpha: 1e-6, beta: 1e-9}},
		Scheduler: SchedulerTrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := ringProgram(50)
	for i := 0; i < 3; i++ {
		if i > 0 {
			w.Reset()
		}
		if err := w.Run(prog); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		w.Reset()
		if err := w.Run(prog); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("det-net replay Reset+Run allocations = %v per cycle, want 0", avg)
	}
}

// TestTraceReplayZeroAllocsPerturbationDisabled guards the serving fast
// path against the fault-injection machinery: a warmed replayer that has
// just executed a *perturbed* replay (delays + probe, which allocate
// cursor state) must return to zero allocations per Reset+Run cycle the
// moment perturbation is disabled again.
func TestTraceReplayZeroAllocsPerturbationDisabled(t *testing.T) {
	net := alphaBeta{alpha: 1e-6, beta: 1e-9}
	w, err := NewWorld(8, Options{Net: net, Seed: 7, Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	prog := ringProgram(50)
	tr, err := w.RunRecorded(prog)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReplayer()
	plain := Options{Net: net, Seed: 7}
	perturbed := Options{
		Net:    net,
		Seed:   7,
		Delays: []Delay{{Rank: 3, Op: 10, Seconds: 1e-3}},
		Probe:  &RunProbe{},
	}
	// Warm the replayer, run a perturbed replay in the middle, and confirm
	// the perturbed makespan moved.
	for i := 0; i < 3; i++ {
		if err := rp.Replay(tr, plain, ReplayParams{}); err != nil {
			t.Fatal(err)
		}
	}
	base := rp.Makespan()
	if err := rp.Replay(tr, perturbed, ReplayParams{}); err != nil {
		t.Fatal(err)
	}
	if rp.Makespan() < base {
		t.Fatalf("perturbed makespan %v < baseline %v", rp.Makespan(), base)
	}
	avg := testing.AllocsPerRun(10, func() {
		if err := rp.Replay(tr, plain, ReplayParams{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("perturbation-disabled replay allocations = %v per cycle, want 0", avg)
	}
	if rp.Makespan() != base {
		t.Errorf("perturbation-disabled makespan %v != baseline %v", rp.Makespan(), base)
	}
}

// TestTraceNonDeterministicNetBitIdentical drives the faithful (RNG
// drawing) replay path with a jittering cost model: replays must still be
// bit-identical to the event backend because per-rank draw order is the
// program order on both paths.
func TestTraceNonDeterministicNetBitIdentical(t *testing.T) {
	net := jitterNet{alphaBeta{alpha: 2e-5, beta: 1e-8}, 0.2}
	prog := wavefrontProgram(3, 2, 4)
	ref, err := NewWorld(6, Options{Net: net, Noise: jitterNoise{0.05}, Seed: 99, Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(prog); err != nil {
		t.Fatal(err)
	}
	tw, err := NewWorld(6, Options{Net: net, Noise: jitterNoise{0.05}, Seed: 99, Scheduler: SchedulerTrace})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		if rep > 0 {
			tw.Reset()
		}
		if err := tw.Run(prog); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if tw.Clock(i) != ref.Clock(i) {
				t.Fatalf("rep %d: clock[%d] = %v, want %v", rep, i, tw.Clock(i), ref.Clock(i))
			}
		}
	}
}

// jitterNet perturbs every alphaBeta cost with the supplied RNG stream —
// the adversarial case for replay fidelity.
type jitterNet struct {
	alphaBeta
	frac float64
}

func (m jitterNet) jitter(v float64, rng *rand.Rand) float64 {
	return v * (1 + m.frac*(2*rng.Float64()-1))
}
func (m jitterNet) SendOverhead(b int, rng *rand.Rand) float64 {
	return m.jitter(m.alphaBeta.SendOverhead(b, rng), rng)
}
func (m jitterNet) RecvOverhead(b int, rng *rand.Rand) float64 {
	return m.jitter(m.alphaBeta.RecvOverhead(b, rng), rng)
}
func (m jitterNet) Transit(b int, rng *rand.Rand) float64 {
	return m.jitter(m.alphaBeta.Transit(b, rng), rng)
}
func (m jitterNet) ReduceCost(p, b int, rng *rand.Rand) float64 {
	return m.jitter(m.alphaBeta.ReduceCost(p, b, rng), rng)
}

// TestTraceStreamOverflow exercises the replayer's overflow stream path:
// ranks exchanging on more than rsInline (src, tag) pairs must replay
// bit-identically (and keep doing so across reuse).
func TestTraceStreamOverflow(t *testing.T) {
	const n, tags = 3, 7 // 7 tags x 2 peers >> 4 inline stream slots
	prog := func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		for round := 0; round < 3; round++ {
			for tag := 0; tag < tags; tag++ {
				c.ChargeExact(1e-5 * float64(1+tag))
				c.SendN(next, tag, 64*(tag+1), nil)
				c.SendN(prev, 100+tag, 32*(tag+1), nil)
			}
			for tag := 0; tag < tags; tag++ {
				c.RecvN(prev, tag)
				c.RecvN(next, 100+tag)
			}
			c.Barrier()
		}
		return nil
	}
	net := detAlphaBeta{alphaBeta{alpha: 1e-5, beta: 2e-9}}
	ref, err := NewWorld(n, Options{Net: net, Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(prog); err != nil {
		t.Fatal(err)
	}
	tw, err := NewWorld(n, Options{Net: net, Scheduler: SchedulerTrace})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		if rep > 0 {
			tw.Reset()
		}
		if err := tw.Run(prog); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if tw.Clock(i) != ref.Clock(i) {
				t.Fatalf("rep %d: clock[%d] = %v, want %v", rep, i, tw.Clock(i), ref.Clock(i))
			}
		}
	}
}

// BenchmarkTraceReplay measures the warmed Reset+Run replay cycle beside
// BenchmarkWorldReuseRun's event-backend numbers (same 8-rank, 800-op
// workload); ReportAllocs documents the zero-allocation steady state the
// CI gate holds.
func BenchmarkTraceReplay(b *testing.B) {
	w, err := NewWorld(8, Options{
		Net:       alphaBeta{alpha: 1e-6, beta: 1e-9},
		Seed:      7,
		Scheduler: SchedulerTrace,
	})
	if err != nil {
		b.Fatal(err)
	}
	prog := ringProgram(50)
	for i := 0; i < 2; i++ {
		if i > 0 {
			w.Reset()
		}
		if err := w.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := w.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(8*50*2), "msg_ops/op")
}
