package mp

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// schedulers lists every backend for table-driven semantics tests. The
// trace backend records its first Run on the event machinery (so a single
// Run is a true execution) and replays on reuse; the reset/replay tests
// cover both phases.
var schedulers = []string{SchedulerGoroutine, SchedulerEvent, SchedulerTrace}

// wavefrontProgram is a miniature of the SWEEP3D pipeline: a px x py rank
// array sweeping from all four corners with charges, tagged sends/receives
// and per-iteration collectives. It exercises every virtual-time path the
// real workloads use.
func wavefrontProgram(px, py, iters int) func(c *Comm) error {
	return func(c *Comm) error {
		ix, iy := c.Rank()%px, c.Rank()/px
		for it := 0; it < iters; it++ {
			c.Charge(1e-4 * float64(1+c.Rank()%3))
			for _, sx := range []int{+1, -1} {
				for _, sy := range []int{+1, -1} {
					upX, downX := ix-sx, ix+sx
					upY, downY := iy-sy, iy+sy
					if upX >= 0 && upX < px {
						c.RecvN(iy*px+upX, 1)
					}
					if upY >= 0 && upY < py {
						c.RecvN(upY*px+ix, 2)
					}
					c.ChargeExact(2e-4)
					if downX >= 0 && downX < px {
						c.SendN(iy*px+downX, 1, 1200, nil)
					}
					if downY >= 0 && downY < py {
						c.SendN(downY*px+ix, 2, 960, nil)
					}
				}
			}
			c.AllreduceMax(float64(c.Rank()))
		}
		c.AllreduceSum(1)
		return nil
	}
}

func runWavefront(t *testing.T, sched string, seed int64) *World {
	t.Helper()
	w, err := NewWorld(12, Options{
		Net:       alphaBeta{alpha: 2e-5, beta: 1e-8},
		Noise:     jitterNoise{0.05},
		Seed:      seed,
		Scheduler: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(wavefrontProgram(4, 3, 5)); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSchedulerEquivalence is the cross-backend correctness harness: for
// identical seeds every backend must agree bit for bit on the makespan
// and on every rank's final clock. The trace backend is additionally
// checked on its *replay* path (Reset+Run after the recording run).
func TestSchedulerEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		g := runWavefront(t, SchedulerGoroutine, seed)
		gc := g.SortedClocks()
		for _, sched := range []string{SchedulerEvent, SchedulerTrace} {
			e := runWavefront(t, sched, seed)
			if sched == SchedulerTrace {
				// Replay the recorded trace; clocks must not move a bit.
				e.Reset()
				if err := e.Run(wavefrontProgram(4, 3, 5)); err != nil {
					t.Fatal(err)
				}
			}
			if g.Makespan() != e.Makespan() {
				t.Fatalf("seed %d: makespan goroutine %v != %s %v", seed, g.Makespan(), sched, e.Makespan())
			}
			ec := e.SortedClocks()
			for i := range gc {
				if gc[i] != ec[i] {
					t.Fatalf("seed %d: clock[%d] goroutine %v != %s %v", seed, i, gc[i], sched, ec[i])
				}
			}
		}
	}
}

// TestEventSchedulerDeterministic runs the same seeded program repeatedly
// and across GOMAXPROCS settings; every run must be bit-identical.
func TestEventSchedulerDeterministic(t *testing.T) {
	ref := runWavefront(t, SchedulerEvent, 99).SortedClocks()
	for rep := 0; rep < 3; rep++ {
		got := runWavefront(t, SchedulerEvent, 99).SortedClocks()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("rep %d: clock[%d] = %v, want %v", rep, i, got[i], ref[i])
			}
		}
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	got := runWavefront(t, SchedulerEvent, 99).SortedClocks()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("GOMAXPROCS=1: clock[%d] = %v, want %v", i, got[i], ref[i])
		}
	}
}

// TestEventSemanticsBattery reruns the core messaging semantics on the
// event backend: tag selectivity, non-overtaking, payload copying,
// causality, collectives and broadcast.
func TestEventSemanticsBattery(t *testing.T) {
	opts := Options{Scheduler: SchedulerEvent}

	t.Run("tag-selectivity", func(t *testing.T) {
		_, err := RunWorld(2, opts, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, 1, []float64{1})
				c.Send(1, 2, []float64{2})
			} else {
				if got := c.Recv(0, 2); got[0] != 2 {
					return fmt.Errorf("tag 2 payload = %v", got)
				}
				if got := c.Recv(0, 1); got[0] != 1 {
					return fmt.Errorf("tag 1 payload = %v", got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("non-overtaking", func(t *testing.T) {
		_, err := RunWorld(2, opts, func(c *Comm) error {
			const n = 50
			if c.Rank() == 0 {
				for i := 0; i < n; i++ {
					c.Send(1, 0, []float64{float64(i)})
				}
			} else {
				for i := 0; i < n; i++ {
					if got := c.Recv(0, 0); got[0] != float64(i) {
						return fmt.Errorf("message %d overtaken: %v", i, got)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("payload-copied", func(t *testing.T) {
		_, err := RunWorld(2, opts, func(c *Comm) error {
			if c.Rank() == 0 {
				buf := []float64{42}
				c.Send(1, 0, buf)
				buf[0] = -1
			} else if got := c.Recv(0, 0); got[0] != 42 {
				return fmt.Errorf("payload mutated: %v", got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("causality", func(t *testing.T) {
		w, err := NewWorld(2, Options{Net: alphaBeta{alpha: 0.5}, Scheduler: SchedulerEvent})
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				c.ChargeExact(10)
				c.Send(1, 0, []float64{1})
			} else {
				c.Recv(0, 0)
				if got := c.Now(); math.Abs(got-11.5) > 1e-12 {
					return fmt.Errorf("receiver clock = %v, want 11.5", got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("collectives", func(t *testing.T) {
		_, err := RunWorld(5, opts, func(c *Comm) error {
			r := float64(c.Rank())
			if got := c.AllreduceMax(r); got != 4 {
				return fmt.Errorf("max = %v", got)
			}
			if got := c.AllreduceSum(r); got != 10 {
				return fmt.Errorf("sum = %v", got)
			}
			for i := 0; i < 20; i++ {
				if got := c.AllreduceSum(float64(i)); got != float64(5*i) {
					return fmt.Errorf("round %d: %v", i, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bcast", func(t *testing.T) {
		_, err := RunWorld(4, opts, func(c *Comm) error {
			for round := 0; round < 4; round++ {
				v := 0.0
				if c.Rank() == round {
					v = float64(100 + round)
				}
				if got := c.Bcast(round, []float64{v}); got[0] != float64(100+round) {
					return fmt.Errorf("round %d rank %d: %v", round, c.Rank(), got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("nonblocking", func(t *testing.T) {
		w, err := NewWorld(2, Options{Net: alphaBeta{alpha: 0.5}, Scheduler: SchedulerEvent})
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				c.Isend(1, 0, 8, nil)
			} else {
				req := c.Irecv(0, 0)
				c.ChargeExact(10)
				req.Wait()
				if got := c.Now(); math.Abs(got-10.5) > 1e-12 {
					return fmt.Errorf("clock = %v, want 10.5", got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestEventSchedulerDetectsDeadlock checks that the event backend turns a
// stuck world into an immediate error — no watchdog timer involved.
func TestEventSchedulerDetectsDeadlock(t *testing.T) {
	w, err := NewWorld(2, Options{Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Recv(0, 99) // never sent
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

// TestEventSchedulerErrorPaths mirrors the goroutine backend's error
// handling for invalid arguments and mismatched collectives.
func TestEventSchedulerErrorPaths(t *testing.T) {
	opts := Options{Scheduler: SchedulerEvent}
	for name, f := range map[string]func(c *Comm) error{
		"self-send":    func(c *Comm) error { c.Send(0, 0, nil); return nil },
		"invalid-dst":  func(c *Comm) error { c.Send(9, 0, nil); return nil },
		"invalid-src":  func(c *Comm) error { c.Recv(9, 0); return nil },
		"invalid-root": func(c *Comm) error { c.Bcast(5, []float64{1}); return nil },
	} {
		w, err := NewWorld(1, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(f); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	w, err := NewWorld(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.AllreduceMax(1)
		} else {
			c.AllreduceSum(1)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected collective mismatch error")
	}

	if _, err := NewWorld(2, Options{Scheduler: "bogus"}); err == nil {
		t.Fatal("expected unknown-scheduler error")
	}
}

// TestEventSchedulerRunsAheadPipeline checks the virtual-time pipeline
// result on the event backend against the analytic value (same program as
// TestRingPipelineVirtualTime).
func TestEventSchedulerRunsAheadPipeline(t *testing.T) {
	const n = 8
	w, err := NewWorld(n, Options{Net: alphaBeta{}, Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() > 0 {
			c.Recv(c.Rank()-1, 0)
		}
		c.ChargeExact(1)
		if c.Rank() < n-1 {
			c.Send(c.Rank()+1, 0, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Makespan(); math.Abs(got-n) > 1e-12 {
		t.Errorf("pipeline makespan = %v, want %v", got, float64(n))
	}
}

// TestSchedulerEquivalenceRandomPrograms fuzzes both backends with random
// deterministic charge/exchange schedules.
func TestSchedulerEquivalenceRandomPrograms(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		seed := int64(1000 + trial)
		prog := func(c *Comm) error {
			rng := rand.New(rand.NewSource(seed + int64(c.Rank())))
			n := c.Size()
			for i := 0; i < 15; i++ {
				c.ChargeExact(rng.Float64() * 1e-3)
				next := (c.Rank() + 1) % n
				prev := (c.Rank() + n - 1) % n
				c.SendN(next, i, 64+rng.Intn(4096), nil)
				c.RecvN(prev, i)
				if i%5 == 0 {
					c.Barrier()
				}
			}
			return nil
		}
		spans := make([]float64, len(schedulers))
		for bi, sched := range schedulers {
			w, err := NewWorld(6, Options{
				Net:       alphaBeta{alpha: 1e-5, beta: 2e-9},
				Seed:      seed,
				Scheduler: sched,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Run(prog); err != nil {
				t.Fatal(err)
			}
			spans[bi] = w.Makespan()
		}
		for bi := 1; bi < len(spans); bi++ {
			if spans[0] != spans[bi] {
				t.Fatalf("trial %d: makespan %s %v vs %s %v",
					trial, schedulers[0], spans[0], schedulers[bi], spans[bi])
			}
		}
	}
}

// hierNet is a hierarchical test model for the cross-backend equivalence
// harness: ranks are packed into nodes of `cores` ranks (and optionally
// nodes into clusters of `nodesPerCluster`), and every class prices with a
// different latency/bandwidth pair. With jitter > 0 the model stops being
// deterministic and every cost draws from the supplied RNG — exercising
// the replay path that re-draws in program order.
type hierNet struct {
	cores           int
	nodesPerCluster int
	alpha           [3]float64 // per-class latency, seconds
	beta            [3]float64 // per-class seconds/byte
	jitter          float64
}

func (m hierNet) NetClasses() int {
	if m.nodesPerCluster > 0 {
		return 3
	}
	return 2
}

func (m hierNet) ClassOf(src, dst int) int {
	ns, nd := src/m.cores, dst/m.cores
	if ns == nd {
		return 0
	}
	if m.nodesPerCluster > 0 && ns/m.nodesPerCluster != nd/m.nodesPerCluster {
		return 2
	}
	return 1
}

func (m hierNet) CostsDeterministic() bool { return m.jitter == 0 }

func (m hierNet) perturb(s float64, rng *rand.Rand) float64 {
	if m.jitter == 0 {
		return s
	}
	return s * (1 + m.jitter*(2*rng.Float64()-1))
}

func (m hierNet) cost(class, b int, rng *rand.Rand) float64 {
	return m.perturb(m.alpha[class]+m.beta[class]*float64(b), rng)
}

func (m hierNet) SendOverheadClass(class, b int, rng *rand.Rand) float64 {
	return m.cost(class, b, rng)
}
func (m hierNet) RecvOverheadClass(class, b int, rng *rand.Rand) float64 {
	return m.cost(class, b, rng)
}
func (m hierNet) TransitClass(class, b int, rng *rand.Rand) float64 {
	return 2 * m.cost(class, b, rng)
}
func (m hierNet) SendOverhead(b int, rng *rand.Rand) float64 { return m.cost(0, b, rng) }
func (m hierNet) RecvOverhead(b int, rng *rand.Rand) float64 { return m.cost(0, b, rng) }
func (m hierNet) Transit(b int, rng *rand.Rand) float64      { return 2 * m.cost(0, b, rng) }
func (m hierNet) ReduceCost(p, b int, rng *rand.Rand) float64 {
	top := m.NetClasses() - 1
	return m.perturb(float64(p)*(m.alpha[top]+m.beta[top]*float64(b)), rng)
}

// testHierNets is the hierarchical matrix: two-level and three-level
// topologies, deterministic and RNG-jittered.
func testHierNets() map[string]hierNet {
	base := hierNet{
		cores: 4,
		alpha: [3]float64{2e-6, 3e-5, 4e-4},
		beta:  [3]float64{1e-9, 8e-9, 5e-8},
	}
	wan := base
	wan.nodesPerCluster = 2
	jit := base
	jit.jitter = 0.08
	wanJit := wan
	wanJit.jitter = 0.05
	return map[string]hierNet{
		"two-level":        base,
		"three-level":      wan,
		"two-level-jitter": jit,
		"wan-jitter":       wanJit,
	}
}

// TestSchedulerEquivalenceHierarchical extends the cross-backend harness
// to hierarchical (src, dst)-classed interconnects: goroutine, event and
// trace replay must agree bit for bit on every rank's clock, with and
// without per-class RNG jitter, and replays of the recorded trace must not
// move a bit either.
func TestSchedulerEquivalenceHierarchical(t *testing.T) {
	for name, net := range testHierNets() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{3, 77} {
				run := func(sched string) *World {
					w, err := NewWorld(12, Options{
						Net:       net,
						Noise:     jitterNoise{0.04},
						Seed:      seed,
						Scheduler: sched,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := w.Run(wavefrontProgram(4, 3, 4)); err != nil {
						t.Fatal(err)
					}
					return w
				}
				g := run(SchedulerGoroutine)
				gc := g.SortedClocks()
				for _, sched := range []string{SchedulerEvent, SchedulerTrace} {
					e := run(sched)
					if sched == SchedulerTrace {
						e.Reset()
						if err := e.Run(wavefrontProgram(4, 3, 4)); err != nil {
							t.Fatal(err)
						}
					}
					if g.Makespan() != e.Makespan() {
						t.Fatalf("%s seed %d: makespan goroutine %v != %s %v",
							name, seed, g.Makespan(), sched, e.Makespan())
					}
					ec := e.SortedClocks()
					for i := range gc {
						if gc[i] != ec[i] {
							t.Fatalf("%s seed %d: clock[%d] goroutine %v != %s %v",
								name, seed, i, gc[i], sched, ec[i])
						}
					}
				}
			}
		})
	}
}

// TestHierarchicalDiffersFromFlattened pins the reason the class machinery
// exists: a two-level net must produce a different schedule outcome than
// its flattened single-class equivalent (either level alone), and pricing
// must bracket the hierarchy between the all-intra and all-inter extremes.
func TestHierarchicalDiffersFromFlattened(t *testing.T) {
	hier := testHierNets()["two-level"]
	intraOnly := alphaBeta{alpha: hier.alpha[0], beta: hier.beta[0]}
	interOnly := alphaBeta{alpha: hier.alpha[1], beta: hier.beta[1]}
	span := func(net NetworkModel) float64 {
		w, err := NewWorld(12, Options{Net: net, Scheduler: SchedulerEvent})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(wavefrontProgram(4, 3, 4)); err != nil {
			t.Fatal(err)
		}
		return w.Makespan()
	}
	h := span(hier)
	// alphaBeta's ReduceCost formula matches hierNet's only at the top
	// class, so compare against interOnly directly and intraOnly loosely.
	lo := span(intraOnly)
	hi := span(interOnly)
	if !(h > lo) {
		t.Errorf("hierarchical makespan %v must exceed all-intra %v", h, lo)
	}
	if !(h < hi) {
		t.Errorf("hierarchical makespan %v must undercut all-inter %v", h, hi)
	}
}
