package mp

// The event-driven virtual-time scheduler backend (Options.Scheduler ==
// SchedulerEvent).
//
// Ranks run as cooperative coroutines: exactly one goroutine holds the
// execution token at any moment, and a rank that blocks (a receive with no
// matching message, a collective waiting for stragglers) hands the token
// directly to the next runnable rank — the one with the smallest virtual
// clock, drawn from a binary min-heap. Message delivery is a plain slice
// append; there are no mutexes, condition variables or broadcast wake-ups
// anywhere on the path. Because the interleaving is fully determined by
// the virtual clocks (ties broken by rank id), a run's output — including
// floating-point accumulation order in collectives — is bit-identical
// across repeated runs and GOMAXPROCS settings.
//
// Per-rank virtual-clock arithmetic is shared with the goroutine backend
// (Comm.SendN/RecvN/reduce), so the two backends produce bit-identical
// Makespan and per-rank clocks for the same seed; sched_test.go enforces
// this. Summed reduction values are the one place the backends may differ
// in the last bits: the goroutine backend accumulates in nondeterministic
// arrival order, this backend in deterministic schedule order.
//
// Deadlocks need no watchdog here: when no rank is runnable and some are
// still blocked, no message can ever arrive, so the scheduler aborts the
// blocked ranks immediately with the same errAborted the watchdog uses.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Rank states of the event scheduler.
const (
	evReady   uint8 = iota // runnable, queued in the clock heap
	evRunning              // holds the execution token
	evBlocked              // parked on a receive or collective
	evDone                 // rank function returned or panicked
)

// msgStream is a FIFO of messages for one (src, tag) pair: appended at
// the tail, consumed from head. When drained it resets to reuse capacity,
// so steady-state delivery is allocation- and memmove-free.
type msgStream struct {
	key  uint64
	msgs []message
	head int
}

// qkey packs a (src, tag) pair into one stream key.
func qkey(src, tag int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(tag))
}

// evRank is one rank's cooperative execution state.
type evRank struct {
	id     int
	c      *Comm
	resume chan struct{} // buffered(1) token handoff
	status uint8

	// streams holds incoming messages by (src, tag). A small linear-scanned
	// slice: ranks talk to a handful of peers (the wavefront uses at most
	// four streams), where a scan beats a map by 4-5x per operation.
	streams []*msgStream
	wantKey uint64 // the stream a blocked receive waits for
	inColl  bool   // blocked inside a collective

	// Snapshot of the collective outcome, written by the generation's
	// closing rank before this rank is woken (the closer may race ahead
	// into the next generation before this rank resumes).
	collRes  []float64
	collDone float64

	err error
}

// evColl is the lock-free collective state of the event backend. It
// mirrors the arithmetic of the goroutine backend's generation-counted
// collective exactly (same accumulator logic, same pricing RNG stream).
type evColl struct {
	n       int
	arrived int
	op      int
	acc     []float64
	maxTime float64
	rng     *rand.Rand
	waiters []*evRank
}

// evWorld is the per-Run scheduler instance.
type evWorld struct {
	w         *World
	ranks     []*evRank
	heap      clockHeap
	master    chan struct{} // closed when every rank has finished
	doneCount int
	aborting  bool
	coll      evColl
}

// runEvent executes f once per rank under the event scheduler.
func (w *World) runEvent(f func(c *Comm) error) error {
	ev := &evWorld{w: w, master: make(chan struct{})}
	ev.coll.n = w.n
	ev.coll.rng = rand.New(rand.NewSource(w.opts.Seed ^ 0x1F3D5B79))
	ev.ranks = make([]*evRank, w.n)
	w.ev = ev
	for i := 0; i < w.n; i++ {
		r := &evRank{
			id:     i,
			resume: make(chan struct{}, 1),
			c: &Comm{
				w:    w,
				rank: i,
				rng:  rand.New(rand.NewSource(w.opts.Seed + int64(i)*0x9E3779B9)),
			},
		}
		ev.ranks[i] = r
		ev.heap.push(heapEntry{clock: 0, id: i})
	}
	for _, r := range ev.ranks {
		go ev.runRank(r, f)
	}
	ev.scheduleNext() // hand the token to rank 0
	<-ev.master
	w.ev = nil
	for _, r := range ev.ranks {
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// runRank is a rank's goroutine body: wait for the token, run the rank
// function, and pass the token on when done.
func (ev *evWorld) runRank(r *evRank, f func(c *Comm) error) {
	<-r.resume
	defer func() {
		if p := recover(); p != nil {
			if err, ok := p.(error); ok && errors.Is(err, errAborted) {
				r.err = err
			} else {
				r.err = fmt.Errorf("mp: rank %d panicked: %v", r.id, p)
			}
		}
		ev.finishRank(r)
	}()
	r.err = f(r.c)
	ev.w.clocks[r.id] = r.c.clock
}

// scheduleNext pops the runnable rank with the smallest virtual clock and
// hands it the execution token. All scheduler-state mutation happens
// before the handoff send, so the resumed rank sees a consistent view;
// the caller must not touch scheduler state afterwards. Returns false
// when no rank is runnable.
func (ev *evWorld) scheduleNext() bool {
	for ev.heap.len() > 0 {
		e := ev.heap.pop()
		r := ev.ranks[e.id]
		if r.status != evReady {
			continue
		}
		r.status = evRunning
		r.resume <- struct{}{}
		return true
	}
	return false
}

// block parks the calling rank until another rank wakes it. If nothing is
// runnable the world is deadlocked; every blocked rank (the caller
// included) is aborted.
func (ev *evWorld) block(r *evRank) {
	r.status = evBlocked
	if !ev.scheduleNext() {
		ev.stalled()
	}
	<-r.resume
	if ev.aborting {
		panic(errAborted)
	}
}

// finishRank retires a rank and passes the token on; the last rank to
// finish releases the master goroutine.
func (ev *evWorld) finishRank(r *evRank) {
	r.status = evDone
	ev.doneCount++
	if ev.doneCount == ev.w.n {
		close(ev.master)
		return
	}
	if !ev.scheduleNext() {
		ev.stalled()
	}
}

// stalled handles the no-runnable-rank case: every live rank is parked on
// a message or collective that can never complete. Unlike the goroutine
// backend's watchdog this detection is exact and immediate. All blocked
// ranks are made runnable and unwound with errAborted as each receives
// the token. The resume channels are buffered, so the caller may hand the
// token to itself and then collect it in block().
func (ev *evWorld) stalled() {
	ev.aborting = true
	for _, br := range ev.ranks {
		if br.status == evBlocked {
			br.status = evReady
			ev.heap.push(heapEntry{clock: br.c.clock, id: br.id})
		}
	}
	ev.scheduleNext()
}

// stream returns the rank's (src, tag) stream, creating it on first use.
func (r *evRank) stream(k uint64) *msgStream {
	for _, s := range r.streams {
		if s.key == k {
			return s
		}
	}
	s := &msgStream{key: k}
	r.streams = append(r.streams, s)
	return s
}

// deliver appends a message to the destination's (src, tag) stream and
// wakes the destination if it is blocked waiting for exactly that stream.
func (ev *evWorld) deliver(dst int, m message) {
	r := ev.ranks[dst]
	k := qkey(m.src, m.tag)
	q := r.stream(k)
	q.msgs = append(q.msgs, m)
	if r.status == evBlocked && !r.inColl && r.wantKey == k {
		r.status = evReady
		ev.heap.push(heapEntry{clock: r.c.clock, id: r.id})
	}
}

// receive returns the next queued message of the (src, tag) stream,
// blocking the rank until one arrives. Per-stream FIFO consumption gives
// the non-overtaking guarantee directly.
func (ev *evWorld) receive(c *Comm, src, tag int) message {
	r := ev.ranks[c.rank]
	q := r.stream(qkey(src, tag))
	for {
		if q.head < len(q.msgs) {
			m := q.msgs[q.head]
			q.msgs[q.head] = message{} // release the payload for GC
			q.head++
			if q.head == len(q.msgs) {
				q.msgs = q.msgs[:0]
				q.head = 0
			}
			return m
		}
		r.wantKey = q.key
		ev.block(r)
	}
}

// reduce is the event backend's blocking all-reduce. The closing rank
// snapshots the result and completion clock into every waiter before
// waking it, so back-to-back generations cannot cross-talk even though
// the closer keeps running immediately.
func (ev *evWorld) reduce(c *Comm, data []float64, op int) []float64 {
	cl := &ev.coll
	r := ev.ranks[c.rank]
	if cl.arrived == 0 {
		cl.op = op
		cl.maxTime = c.clock
		if data != nil {
			cl.acc = append(cl.acc[:0], data...)
		} else {
			cl.acc = cl.acc[:0]
		}
	} else {
		if op != cl.op {
			panic(fmt.Errorf("mp: rank %d joined collective with mismatched op", c.rank))
		}
		if data != nil {
			if len(data) != len(cl.acc) {
				panic(fmt.Errorf("mp: rank %d collective length mismatch: %d vs %d", c.rank, len(data), len(cl.acc)))
			}
			reduceAccumulate(cl.acc, data, op, c.bcastRoot)
		}
		cl.maxTime = math.Max(cl.maxTime, c.clock)
	}
	cl.arrived++
	if cl.arrived == cl.n {
		// Last participant closes the generation and prices the
		// collective from the dedicated RNG stream, exactly as the
		// goroutine backend does.
		result := append([]float64(nil), cl.acc...)
		done := cl.maxTime
		if net := ev.w.opts.Net; net != nil {
			done += net.ReduceCost(cl.n, 8*len(cl.acc), cl.rng)
		}
		cl.arrived = 0
		for _, wr := range cl.waiters {
			wr.collRes = result
			wr.collDone = done
			wr.status = evReady
			ev.heap.push(heapEntry{clock: wr.c.clock, id: wr.id})
		}
		cl.waiters = cl.waiters[:0]
		c.clock = done
		return result
	}
	r.inColl = true
	cl.waiters = append(cl.waiters, r)
	ev.block(r)
	r.inColl = false
	res := r.collRes
	r.collRes = nil
	c.clock = r.collDone
	return res
}

// --- virtual-clock min-heap of runnable ranks ---

type heapEntry struct {
	clock float64
	id    int
}

// clockHeap is a binary min-heap ordered by (clock, id). Each rank has at
// most one live entry; stale entries are skipped by the status check in
// scheduleNext.
type clockHeap struct {
	e []heapEntry
}

func (h *clockHeap) len() int { return len(h.e) }

func entryLess(a, b heapEntry) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

func (h *clockHeap) push(x heapEntry) {
	h.e = append(h.e, x)
	i := len(h.e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(h.e[i], h.e[parent]) {
			break
		}
		h.e[i], h.e[parent] = h.e[parent], h.e[i]
		i = parent
	}
}

func (h *clockHeap) pop() heapEntry {
	top := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e = h.e[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.e) && entryLess(h.e[l], h.e[small]) {
			small = l
		}
		if r < len(h.e) && entryLess(h.e[r], h.e[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.e[i], h.e[small] = h.e[small], h.e[i]
		i = small
	}
	return top
}
