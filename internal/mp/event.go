package mp

// The event-driven virtual-time scheduler backend (Options.Scheduler ==
// SchedulerEvent).
//
// Ranks run as cooperative coroutines: exactly one goroutine holds the
// execution token at any moment, and a rank that blocks (a receive with no
// matching message, a collective waiting for stragglers) hands the token
// directly to the next runnable rank — the one with the smallest virtual
// clock. Message delivery is a plain slice append; there are no mutexes,
// condition variables or broadcast wake-ups anywhere on the path. Because
// the interleaving is fully determined by the virtual clocks (ties broken
// by rank id), a run's output — including floating-point accumulation
// order in collectives — is bit-identical across repeated runs and
// GOMAXPROCS settings.
//
// Run-to-completion handoff: the scheduler keeps the next runnable rank in
// a dedicated slot (ev.slot) beside the clock min-heap. A rank woken by a
// message delivery (the overwhelmingly common case in a wavefront, where
// the sender's delivery is what unblocks the unique minimum-clock rank)
// parks in the slot instead of being pushed through the heap; when the
// sender eventually blocks, the token is handed straight to the slot with
// zero heap traffic. The heap only sees ranks displaced from the slot by
// an even-earlier wake-up, so steady-state block/wake cycles cost one
// comparison instead of a push+pop pair of log-depth sift operations.
// scheduleNext still always resumes the exact minimum-(clock, id) runnable
// rank, so the schedule — and therefore every clock — is unchanged.
//
// Memory layout: per-rank state is split into two parallel arrays. evInbox
// holds only what a *sender* touches when delivering into another rank —
// status, the awaited stream key, and the stream table — at ~48 bytes per
// rank, so the whole delivery-hot working set of even an 8000-rank world
// stays cache-resident. evRank carries everything else (the resume
// channel, collective snapshot, the embedded Comm), which only the rank
// itself and the scheduler touch.
//
// All per-run state lives in one evWorld that is allocated with the World
// and reused across Run calls via World.Reset, so a pooled world reaches
// zero steady-state allocations per message operation.
//
// Per-rank virtual-clock arithmetic is shared with the goroutine backend
// (Comm.SendN/RecvN/reduce), so the two backends produce bit-identical
// Makespan and per-rank clocks for the same seed; sched_test.go enforces
// this. Summed reduction values are the one place the backends may differ
// in the last bits: the goroutine backend accumulates in nondeterministic
// arrival order, this backend in deterministic schedule order.
//
// Deadlocks need no watchdog here: when no rank is runnable and some are
// still blocked, no message can ever arrive, so the scheduler aborts the
// blocked ranks immediately with the same errAborted the watchdog uses —
// including ranks parked *inside* a collective that the remaining ranks
// will never join.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Rank states of the event scheduler.
const (
	evReady   uint8 = iota // runnable, queued in the clock heap or slot
	evRunning              // holds the execution token
	evBlocked              // parked on a receive or collective
	evDone                 // rank function returned or panicked
)

// qmsg is one queued message in a stream. The stream key already encodes
// (src, tag) and payloads live in the stream's side array, so a queued
// message is 16 bytes — delivery into a remote rank's queue is the single
// hottest memory traffic of the event backend, and skeleton/template
// workloads (payload-free sends) dirty exactly one cache line per four
// deliveries. Wire sizes are stored as int32: virtual messages above 2 GiB
// are outside any modelled regime.
type qmsg struct {
	avail   float64 // virtual time at which the receiver may consume it
	bytes   int32
	dataIdx int32 // index into msgStream.data, or -1 for payload-free
}

// msgStream is a FIFO of messages for one (src, tag) pair: appended at
// the tail, consumed from head. When drained it resets to reuse capacity,
// so steady-state delivery is allocation- and memmove-free. The data side
// array is touched only by payload-carrying messages and stays nil for
// skeleton traffic.
type msgStream struct {
	key  uint64
	msgs []qmsg
	head int
	data [][]float64
}

// qkey packs a (src, tag) pair into one stream key. It must stay a leaf
// function (no closures, no interface hops): it sits on the per-block
// fast path of every send and receive and is expected to inline.
func qkey(src, tag int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(tag))
}

// evInbox is the delivery-hot slice of one rank's state; see the package
// comment on layout.
type evInbox struct {
	status  uint8
	inColl  bool    // blocked inside a collective
	wantKey uint64  // the stream a blocked receive waits for
	clock   float64 // the rank's clock, frozen at block time (valid while not running)

	// streams holds incoming messages by (src, tag), flattened into a
	// value slice: ranks talk to a handful of peers (the wavefront uses at
	// most four streams), where an inline linear scan beats both a map and
	// a pointer slice. Streams are addressed by index, never by held
	// pointer — the backing array moves when a new stream is added.
	streams []msgStream
}

// streamIndex returns the index of the rank's (src, tag) stream, creating
// it on first use. Callers re-derive the *msgStream from the index after
// any operation that can add streams (blocking included) — the backing
// array may have moved.
func (ib *evInbox) streamIndex(k uint64) int {
	for i := range ib.streams {
		if ib.streams[i].key == k {
			return i
		}
	}
	ib.streams = append(ib.streams, msgStream{key: k})
	return len(ib.streams) - 1
}

// evRank is the cold remainder of a rank's cooperative execution state:
// only the rank itself (while running) and the scheduler (on handoff)
// touch it.
type evRank struct {
	id     int
	resume chan struct{} // buffered(1) token handoff
	body   func()        // pre-built goroutine body; spawning it allocates nothing

	// Snapshot of the collective outcome, written by the generation's
	// closing rank before this rank is woken (the closer may race ahead
	// into the next generation before this rank resumes).
	collRes  []float64
	collDone float64

	err  error
	comm Comm
}

// evColl is the lock-free collective state of the event backend. It
// mirrors the arithmetic of the goroutine backend's generation-counted
// collective exactly (same accumulator logic, same pricing RNG stream).
type evColl struct {
	n       int
	arrived int
	gen     int // completed generations; the probe's row index
	op      int
	acc     []float64
	maxTime float64
	rng     *rand.Rand
	waiters []int // rank ids, in arrival order
}

// evWorld is the event scheduler instance. It is created once per World
// and reused across Run calls (see World.Reset); nothing in it is
// reallocated on the steady-state path.
type evWorld struct {
	w         *World
	f         func(c *Comm) error // the current run's rank function
	ranks     []evRank
	inbox     []evInbox
	heap      clockHeap
	slot      int           // run-to-completion handoff slot (rank id; -1 empty)
	slotClock float64       // the slot rank's frozen clock
	master    chan struct{} // buffered(1); signalled when every rank has finished
	doneCount int
	aborting  bool
	coll      evColl
}

// newEvWorld builds the persistent scheduler state for an event world.
func newEvWorld(w *World) *evWorld {
	ev := &evWorld{w: w, slot: -1, master: make(chan struct{}, 1)}
	ev.coll.n = w.n
	ev.coll.rng = rand.New(rand.NewSource(w.opts.Seed ^ 0x1F3D5B79))
	ev.ranks = make([]evRank, w.n)
	ev.inbox = make([]evInbox, w.n)
	ev.heap.e = make([]heapEntry, 0, w.n)
	for i := range ev.ranks {
		r := &ev.ranks[i]
		r.id = i
		r.resume = make(chan struct{}, 1)
		r.body = func() { ev.runRank(r) }
		w.initComm(&r.comm, i)
	}
	return ev
}

// reset returns the scheduler to its initial state without releasing any
// of the pooled storage: rank records, stream buffers, the heap slice and
// the collective scratch all keep their capacity.
func (ev *evWorld) reset() {
	ev.slot = -1
	ev.doneCount = 0
	ev.aborting = false
	ev.heap.e = ev.heap.e[:0]
	ev.coll.arrived = 0
	ev.coll.gen = 0
	ev.coll.acc = ev.coll.acc[:0]
	ev.coll.waiters = ev.coll.waiters[:0]
	ev.coll.rng.Seed(ev.w.opts.Seed ^ 0x1F3D5B79)
	for i := range ev.ranks {
		r := &ev.ranks[i]
		r.collRes = nil
		r.collDone = 0
		r.err = nil
		ev.w.initComm(&r.comm, i)
		ib := &ev.inbox[i]
		ib.status = evReady
		ib.inColl = false
		ib.wantKey = 0
		ib.clock = 0
		for s := range ib.streams {
			q := &ib.streams[s]
			q.msgs = q.msgs[:0]
			q.head = 0
			for d := range q.data {
				q.data[d] = nil
			}
			q.data = q.data[:0]
		}
	}
}

// runEvent executes f once per rank under the event scheduler.
func (w *World) runEvent(f func(c *Comm) error) error {
	ev := w.ev
	ev.f = f
	for i := range ev.ranks {
		ev.inbox[i].status = evReady
		// All clocks are zero at start, so appending in id order already
		// satisfies the heap invariant — no sifting needed.
		ev.heap.e = append(ev.heap.e, heapEntry{clock: 0, id: i})
		go ev.ranks[i].body()
	}
	ev.scheduleNext() // hand the token to rank 0
	<-ev.master
	ev.f = nil
	for i := range ev.ranks {
		if err := ev.ranks[i].err; err != nil {
			return err
		}
	}
	return nil
}

// runRank is a rank's goroutine body: wait for the token, run the rank
// function, and pass the token on when done.
func (ev *evWorld) runRank(r *evRank) {
	<-r.resume
	defer func() {
		if p := recover(); p != nil {
			if err, ok := p.(error); ok && errors.Is(err, errAborted) {
				r.err = err
			} else {
				r.err = fmt.Errorf("mp: rank %d panicked: %v", r.id, p)
			}
		}
		ev.finishRank(r)
	}()
	r.err = ev.f(&r.comm)
	ev.w.clocks[r.id] = r.comm.clock
}

// wake marks a blocked rank runnable. The slot holds the earliest woken
// rank; a later wake with a smaller (clock, id) displaces the incumbent
// into the heap. Each ready rank lives in exactly one place — the slot or
// the heap — so scheduleNext's minimum is exact. Clocks come from the
// inbox records (frozen at block time), so the whole wake path stays on
// the delivery-hot array.
func (ev *evWorld) wake(id int, ib *evInbox) {
	ib.status = evReady
	clock := ib.clock
	s := ev.slot
	if s < 0 {
		ev.slot, ev.slotClock = id, clock
		return
	}
	if clock < ev.slotClock || (clock == ev.slotClock && id < s) {
		// Displace the incumbent into the heap.
		id, clock, ev.slot, ev.slotClock = s, ev.slotClock, id, clock
	}
	ev.heap.push(heapEntry{clock: clock, id: id})
}

// scheduleNext hands the execution token to the runnable rank with the
// smallest (clock, id), drawn from the slot or the heap. All
// scheduler-state mutation happens before the handoff send, so the
// resumed rank sees a consistent view; the caller must not touch
// scheduler state afterwards. Returns false when no rank is runnable.
func (ev *evWorld) scheduleNext() bool {
	for {
		if s := ev.slot; s >= 0 {
			if ev.heap.len() == 0 || !entryLess(ev.heap.top(), heapEntry{clock: ev.slotClock, id: s}) {
				// Fast path: the slot rank is the minimum — zero heap ops.
				ev.slot = -1
				ev.inbox[s].status = evRunning
				ev.ranks[s].resume <- struct{}{}
				return true
			}
		}
		if ev.heap.len() == 0 {
			return false
		}
		e := ev.heap.pop()
		if ev.inbox[e.id].status != evReady {
			continue // stale entry; re-compare the slot against the new top
		}
		ev.inbox[e.id].status = evRunning
		ev.ranks[e.id].resume <- struct{}{}
		return true
	}
}

// block parks the calling rank until another rank wakes it, freezing its
// clock into the inbox record for the wake path. If nothing is runnable
// the world is deadlocked; every blocked rank (the caller included) is
// aborted.
func (ev *evWorld) block(r *evRank) {
	ib := &ev.inbox[r.id]
	ib.status = evBlocked
	ib.clock = r.comm.clock
	if !ev.scheduleNext() {
		ev.stalled()
	}
	<-r.resume
	if ev.aborting {
		panic(errAborted)
	}
}

// finishRank retires a rank and passes the token on; the last rank to
// finish releases the master goroutine.
func (ev *evWorld) finishRank(r *evRank) {
	ev.inbox[r.id].status = evDone
	ev.doneCount++
	if ev.doneCount == ev.w.n {
		ev.master <- struct{}{}
		return
	}
	if !ev.scheduleNext() {
		ev.stalled()
	}
}

// stalled handles the no-runnable-rank case: every live rank is parked on
// a message or collective that can never complete. Unlike the goroutine
// backend's watchdog this detection is exact and immediate. All blocked
// ranks are made runnable and unwound with errAborted as each receives
// the token. The resume channels are buffered, so the caller may hand the
// token to itself and then collect it in block().
func (ev *evWorld) stalled() {
	ev.aborting = true
	for i := range ev.inbox {
		if ib := &ev.inbox[i]; ib.status == evBlocked {
			ev.wake(i, ib)
		}
	}
	ev.scheduleNext()
}

// deliver appends a message to the destination's (src, tag) stream and
// wakes the destination if it is blocked waiting for exactly that stream.
// The woken receiver usually lands in the handoff slot: when the sender
// later blocks, the token passes to it directly.
func (ev *evWorld) deliver(dst int, k uint64, bytes int, data []float64, avail float64) {
	ib := &ev.inbox[dst]
	q := &ib.streams[ib.streamIndex(k)]
	dataIdx := int32(-1)
	if data != nil {
		q.data = append(q.data, data)
		dataIdx = int32(len(q.data) - 1)
	}
	q.msgs = append(q.msgs, qmsg{avail: avail, bytes: int32(bytes), dataIdx: dataIdx})
	if ib.status == evBlocked && !ib.inColl && ib.wantKey == k {
		ev.wake(dst, ib)
	}
}

// receive returns the payload, wire size and availability time of the
// next queued message of the (src, tag) stream, blocking the rank until
// one arrives. Per-stream FIFO consumption gives the non-overtaking
// guarantee directly.
func (ev *evWorld) receive(c *Comm, src, tag int) ([]float64, int, float64) {
	ib := &ev.inbox[c.rank]
	k := qkey(src, tag)
	qi := ib.streamIndex(k)
	for {
		q := &ib.streams[qi]
		if q.head < len(q.msgs) {
			m := q.msgs[q.head]
			var data []float64
			if m.dataIdx >= 0 {
				data = q.data[m.dataIdx]
				q.data[m.dataIdx] = nil // release the payload for GC
			}
			q.head++
			if q.head == len(q.msgs) {
				q.msgs = q.msgs[:0]
				q.head = 0
				if q.data != nil {
					q.data = q.data[:0]
				}
			}
			return data, int(m.bytes), m.avail
		}
		ib.wantKey = k
		ev.block(&ev.ranks[c.rank])
	}
}

// reduce is the event backend's blocking all-reduce. The closing rank
// snapshots the result and completion clock into every waiter before
// waking it, so back-to-back generations cannot cross-talk even though
// the closer keeps running immediately.
func (ev *evWorld) reduce(c *Comm, data []float64, op int) []float64 {
	cl := &ev.coll
	if p := ev.w.opts.Probe; p != nil {
		p.record(cl.gen, c.rank, c.clock, c.idle)
	}
	entry := c.clock
	if cl.arrived == 0 {
		cl.op = op
		cl.maxTime = c.clock
		if data != nil {
			cl.acc = append(cl.acc[:0], data...)
		} else {
			cl.acc = cl.acc[:0]
		}
	} else {
		if op != cl.op {
			panic(fmt.Errorf("mp: rank %d joined collective with mismatched op", c.rank))
		}
		if data != nil {
			if len(data) != len(cl.acc) {
				panic(fmt.Errorf("mp: rank %d collective length mismatch: %d vs %d", c.rank, len(data), len(cl.acc)))
			}
			reduceAccumulate(cl.acc, data, op, c.bcastRoot)
		}
		cl.maxTime = math.Max(cl.maxTime, c.clock)
	}
	cl.arrived++
	if cl.arrived == cl.n {
		// Last participant closes the generation and prices the
		// collective from the dedicated RNG stream, exactly as the
		// goroutine backend does.
		result := append([]float64(nil), cl.acc...)
		done := cl.maxTime
		if net := ev.w.opts.Net; net != nil {
			done += net.ReduceCost(cl.n, 8*len(cl.acc), cl.rng)
		}
		cl.arrived = 0
		cl.gen++
		for _, id := range cl.waiters {
			wr := &ev.ranks[id]
			wr.collRes = result
			wr.collDone = done
			ev.wake(id, &ev.inbox[id])
		}
		cl.waiters = cl.waiters[:0]
		if ev.w.opts.Probe != nil {
			c.idle += done - entry
		}
		c.clock = done
		return result
	}
	r := &ev.ranks[c.rank]
	ev.inbox[c.rank].inColl = true
	cl.waiters = append(cl.waiters, c.rank)
	ev.block(r)
	ev.inbox[c.rank].inColl = false
	res := r.collRes
	r.collRes = nil
	if ev.w.opts.Probe != nil {
		c.idle += r.collDone - entry
	}
	c.clock = r.collDone
	return res
}

// --- virtual-clock min-heap of runnable ranks ---

type heapEntry struct {
	clock float64
	id    int
}

// clockHeap is a binary min-heap ordered by (clock, id). Each rank has at
// most one live entry; stale entries are skipped by the status check in
// scheduleNext.
type clockHeap struct {
	e []heapEntry
}

func (h *clockHeap) len() int { return len(h.e) }

// top peeks the minimum entry; callers must check len() > 0 first.
func (h *clockHeap) top() heapEntry { return h.e[0] }

// entryLess orders heap entries by (clock, id). Like qkey it must stay a
// branch-only leaf so the per-handoff comparisons inline.
func entryLess(a, b heapEntry) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

func (h *clockHeap) push(x heapEntry) {
	h.e = append(h.e, x)
	i := len(h.e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(h.e[i], h.e[parent]) {
			break
		}
		h.e[i], h.e[parent] = h.e[parent], h.e[i]
		i = parent
	}
}

func (h *clockHeap) pop() heapEntry {
	top := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e = h.e[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.e) && entryLess(h.e[l], h.e[small]) {
			small = l
		}
		if r < len(h.e) && entryLess(h.e[r], h.e[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.e[i], h.e[small] = h.e[small], h.e[i]
		i = small
	}
	return top
}
