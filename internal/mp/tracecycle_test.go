package mp

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"pacesweep/internal/artifact"
)

// markedWavefront is wavefrontProgram with the pace-template mark
// convention: marks bracket iteration 0 only, so the first collective
// generation differs from the steady body and lands in the cycle prefix.
func markedWavefront(px, py, iters int) func(c *Comm) error {
	return func(c *Comm) error {
		ix, iy := c.Rank()%px, c.Rank()/px
		for it := 0; it < iters; it++ {
			if it == 0 {
				c.Mark(0)
			}
			c.Charge(1e-4 * float64(1+c.Rank()%3))
			for _, sx := range []int{+1, -1} {
				for _, sy := range []int{+1, -1} {
					upX, downX := ix-sx, ix+sx
					upY, downY := iy-sy, iy+sy
					if upX >= 0 && upX < px {
						c.RecvN(iy*px+upX, 1)
					}
					if upY >= 0 && upY < py {
						c.RecvN(upY*px+ix, 2)
					}
					c.ChargeExact(2e-4)
					if downX >= 0 && downX < px {
						c.SendN(iy*px+downX, 1, 1200, nil)
					}
					if downY >= 0 && downY < py {
						c.SendN(downY*px+ix, 2, 960, nil)
					}
				}
			}
			if it == 0 {
				c.Mark(1)
			}
			c.AllreduceMax(float64(c.Rank()))
		}
		c.AllreduceSum(1)
		return nil
	}
}

// recordMarkedWavefront records the marked wavefront on the event backend
// and returns the compiled trace.
func recordMarkedWavefront(t *testing.T, net NetworkModel, iters int) *Trace {
	t.Helper()
	w, err := NewWorld(12, Options{Net: net, Scheduler: SchedulerEvent})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.RunRecorded(markedWavefront(4, 3, iters))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// cycleTestNets is the deterministic platform matrix for the
// extrapolation equivalence tests: flat alpha-beta plus the two- and
// three-level hierarchical class models.
func cycleTestNets() map[string]NetworkModel {
	flat := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	nets := map[string]NetworkModel{"flat": flat}
	for name, hn := range testHierNets() {
		if hn.CostsDeterministic() {
			nets[name] = hn
		}
	}
	return nets
}

// TestTraceCycleDetected pins the detection result on the canonical
// wavefront shape: period-1 steady cycle, non-trivial prefix, and the
// fused-op accounting distinguishing macro steps from scalar ops.
func TestTraceCycleDetected(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	tr := recordMarkedWavefront(t, net, 8)
	if !tr.CycleDetected() {
		t.Fatal("no steady-state cycle detected on the wavefront template")
	}
	if tr.CyclePeriod() != 1 {
		t.Fatalf("period = %d, want 1", tr.CyclePeriod())
	}
	if tr.CycleCount() < cycMinCycles {
		t.Fatalf("cycles = %d, want >= %d", tr.CycleCount(), cycMinCycles)
	}
	if tr.CyclePrefixGens() < 1 {
		t.Fatalf("prefix = %d, want >= 1", tr.CyclePrefixGens())
	}
	// Fusion accounting: macro steps exist, fused dispatch count is
	// strictly below the scalar op count, and the scalar counters are
	// untouched by fusion.
	if tr.MacroOps() == 0 || tr.MacroUniqueOps() == 0 {
		t.Fatalf("no macro ops fused: total=%d unique=%d", tr.MacroOps(), tr.MacroUniqueOps())
	}
	if tr.FusedOps() >= tr.Ops() {
		t.Fatalf("fusion did not shrink dispatch: fused=%d scalar=%d", tr.FusedOps(), tr.Ops())
	}
	if tr.FusedUniqueOps() >= tr.UniqueOps()+tr.MacroUniqueOps() {
		t.Fatalf("fused unique ops %d not below scalar unique %d + macros %d",
			tr.FusedUniqueOps(), tr.UniqueOps(), tr.MacroUniqueOps())
	}
	if tr.MacroOps() > tr.FusedOps() || tr.MacroUniqueOps() > tr.FusedUniqueOps() {
		t.Fatal("macro counters exceed fused totals")
	}
}

// TestTraceExtrapolationMatchesEvent is the equivalence matrix: a trace
// recorded at a short horizon and replayed with ExtraCycles must produce
// clocks and marks bit-identical to a full event-backend run of the long
// horizon, on flat and hierarchical deterministic platforms.
func TestTraceExtrapolationMatchesEvent(t *testing.T) {
	const base = 8
	for name, net := range cycleTestNets() {
		t.Run(name, func(t *testing.T) {
			tr := recordMarkedWavefront(t, net, base)
			if !tr.CycleDetected() {
				t.Fatal("cycle not detected")
			}
			r := NewReplayer()
			for _, iters := range []int{base, 11, 40, 400, 4000} {
				ref, err := NewWorld(12, Options{Net: net, Scheduler: SchedulerEvent})
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.Run(markedWavefront(4, 3, iters)); err != nil {
					t.Fatal(err)
				}
				if err := r.Replay(tr, Options{Net: net}, ReplayParams{ExtraCycles: iters - base}); err != nil {
					t.Fatalf("iters=%d: %v", iters, err)
				}
				for i := 0; i < 12; i++ {
					if r.Clock(i) != ref.Clock(i) {
						t.Fatalf("iters=%d: clock[%d] = %v, want %v", iters, i, r.Clock(i), ref.Clock(i))
					}
				}
				for m := 0; m < 2; m++ {
					if r.Marks()[m] != ref.Marks()[m] {
						t.Fatalf("iters=%d: mark[%d] = %v, want %v", iters, m, r.Marks()[m], ref.Marks()[m])
					}
				}
				if iters >= 400 && r.Stats().ExtrapolatedCycles == 0 {
					t.Fatalf("iters=%d: no cycles extrapolated (stats %+v)", iters, r.Stats())
				}
			}
		})
	}
}

// TestTraceExtrapolationLongHorizonFlat drives the extrapolation far past
// the recorded horizon on one platform and checks the work stays bounded:
// virtually all steady cycles must be skipped, not replayed.
func TestTraceExtrapolationLongHorizonFlat(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	tr := recordMarkedWavefront(t, net, 8)
	r := NewReplayer()
	const iters = 100000
	if err := r.Replay(tr, Options{Net: net}, ReplayParams{ExtraCycles: iters - 8}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	total := st.ReplayedCycles + st.ExtrapolatedCycles
	if total != iters-1 {
		t.Fatalf("cycle total = %d, want %d (stats %+v)", total, iters-1, st)
	}
	// Binade crossings replay a handful of cycles each; everything else
	// must be analytic. 1% is a generous ceiling.
	if st.ReplayedCycles*100 > total {
		t.Fatalf("replayed %d of %d steady cycles — extrapolation not engaged", st.ReplayedCycles, total)
	}
}

// TestTraceExtrapolationPerturbedFallsBack pins the fallback contract:
// every perturbation option forces the full-replay path (zero
// extrapolated cycles, bit-identical to the event backend), and asking
// for ExtraCycles under perturbation is an explicit error.
func TestTraceExtrapolationPerturbedFallsBack(t *testing.T) {
	det := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	rows := map[string]Options{
		"noise":  {Net: det, Noise: jitterNoise{0.05}, Seed: 3},
		"probe":  {Net: det, Probe: &RunProbe{}},
		"delays": {Net: det, Delays: []Delay{{Rank: 1, Op: 5, Seconds: 1e-3}}},
		"fails":  {Net: det, Fails: []FailStop{{Rank: 2, Op: 7, Restart: 1e-2}}},
		"jitter-net": {Net: jitterNet{
			alphaBeta: alphaBeta{alpha: 2e-5, beta: 1e-8}, frac: 0.05}, Seed: 3},
	}
	tr := recordMarkedWavefront(t, det, 8)
	if !tr.CycleDetected() {
		t.Fatal("cycle not detected")
	}
	for name, opts := range rows {
		t.Run(name, func(t *testing.T) {
			refOpts := opts
			refOpts.Scheduler = SchedulerEvent
			ref, err := NewWorld(12, refOpts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(markedWavefront(4, 3, 8)); err != nil {
				t.Fatal(err)
			}
			row := tr
			if opts.Noise != nil {
				// Noisy charges must be recorded as re-drawable ops; a
				// noise-free recording replays them exactly by design.
				w, err := NewWorld(12, refOpts)
				if err != nil {
					t.Fatal(err)
				}
				if row, err = w.RunRecorded(markedWavefront(4, 3, 8)); err != nil {
					t.Fatal(err)
				}
			}
			r := NewReplayer()
			if err := r.Replay(row, opts, ReplayParams{}); err != nil {
				t.Fatal(err)
			}
			if got := r.Stats().ExtrapolatedCycles; got != 0 {
				t.Fatalf("perturbed replay extrapolated %d cycles", got)
			}
			for i := 0; i < 12; i++ {
				if r.Clock(i) != ref.Clock(i) {
					t.Fatalf("clock[%d] = %v, want %v", i, r.Clock(i), ref.Clock(i))
				}
			}
			if err := r.Replay(row, opts, ReplayParams{ExtraCycles: 5}); !errors.Is(err, ErrCannotExtrapolate) {
				t.Fatalf("ExtraCycles under perturbation: err = %v, want ErrCannotExtrapolate", err)
			}
		})
	}
}

// TestTraceExtrapolationParamValidation pins ReplayParams validation:
// negative ExtraCycles is an argument error, and ExtraCycles on a trace
// with no usable cycle is ErrCannotExtrapolate.
func TestTraceExtrapolationParamValidation(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	tr := recordMarkedWavefront(t, net, 8)
	r := NewReplayer()
	if err := r.Replay(tr, Options{Net: net}, ReplayParams{ExtraCycles: -1}); err == nil {
		t.Fatal("negative ExtraCycles accepted")
	}
	// Too short to contain cycMinCycles steady cycles: detection must
	// decline and ExtraCycles must refuse.
	short := recordMarkedWavefront(t, net, 3)
	if short.CycleDetected() {
		t.Fatal("cycle detected on a 3-iteration trace")
	}
	if err := r.Replay(short, Options{Net: net}, ReplayParams{ExtraCycles: 5}); !errors.Is(err, ErrCannotExtrapolate) {
		t.Fatalf("err = %v, want ErrCannotExtrapolate", err)
	}
	if err := r.Replay(short, Options{Net: net}, ReplayParams{}); err != nil {
		t.Fatalf("plain replay of short trace: %v", err)
	}
}

// TestTraceReplayZeroAllocsExtrapolated extends the zero-alloc contract
// to extrapolated replays: once a Replayer is warmed (tables sized, plan
// memo populated), long-horizon replays must not allocate.
func TestTraceReplayZeroAllocsExtrapolated(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	tr := recordMarkedWavefront(t, net, 8)
	r := NewReplayer()
	opts := Options{Net: net}
	p := ReplayParams{ExtraCycles: 9992}
	for i := 0; i < 3; i++ {
		if err := r.Replay(tr, opts, p); err != nil {
			t.Fatal(err)
		}
	}
	if r.Stats().ExtrapolatedCycles == 0 {
		t.Fatal("warmup replays did not extrapolate")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := r.Replay(tr, opts, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed extrapolated replay allocates %v/op, want 0", allocs)
	}
}

// TestTraceCodecCycleMetadataRoundTrip pins the v2 codec block: detection
// results survive encode→decode structurally intact, and the decoded
// trace extrapolates bit-identically to its source.
func TestTraceCodecCycleMetadataRoundTrip(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	tr := recordMarkedWavefront(t, net, 8)
	if !tr.CycleDetected() {
		t.Fatal("cycle not detected")
	}
	data := tr.EncodeBinary()
	dec, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatal("decoded trace (with cycle metadata) differs from source")
	}
	if !bytes.Equal(dec.EncodeBinary(), data) {
		t.Fatal("encode→decode→encode is not byte-identical")
	}
	ref, got := NewReplayer(), NewReplayer()
	p := ReplayParams{ExtraCycles: 492}
	if err := ref.Replay(tr, Options{Net: net}, p); err != nil {
		t.Fatal(err)
	}
	if err := got.Replay(dec, Options{Net: net}, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Ranks(); i++ {
		if ref.Clock(i) != got.Clock(i) {
			t.Fatalf("clock[%d] = %v, want %v", i, got.Clock(i), ref.Clock(i))
		}
	}
}

// TestTraceCodecV1LegacyDecodes pins backwards compatibility: a v1
// payload (no cycle block) still decodes, the cycle is recomputed live,
// and re-encoding yields a current-version artifact byte-identical to
// encoding the source directly.
func TestTraceCodecV1LegacyDecodes(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	tr := recordMarkedWavefront(t, net, 8)
	legacy := tr.encodeBinary(traceCodecV1)
	dec, err := DecodeTrace(legacy)
	if err != nil {
		t.Fatalf("v1 artifact refused: %v", err)
	}
	if !dec.CycleDetected() || dec.CyclePeriod() != tr.CyclePeriod() || dec.CycleCount() != tr.CycleCount() {
		t.Fatalf("live redetection differs: %d/%d vs %d/%d",
			dec.CyclePeriod(), dec.CycleCount(), tr.CyclePeriod(), tr.CycleCount())
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatal("trace decoded from v1 differs from source")
	}
	if !bytes.Equal(dec.EncodeBinary(), tr.EncodeBinary()) {
		t.Fatal("re-encoding a v1 decode is not the canonical v2 artifact")
	}
	ref, got := NewReplayer(), NewReplayer()
	p := ReplayParams{ExtraCycles: 92}
	if err := ref.Replay(tr, Options{Net: net}, p); err != nil {
		t.Fatal(err)
	}
	if err := got.Replay(dec, Options{Net: net}, p); err != nil {
		t.Fatal(err)
	}
	if ref.Makespan() != got.Makespan() {
		t.Fatalf("makespan %v != %v", got.Makespan(), ref.Makespan())
	}
}

// TestTraceCodecCorruptCycleMetadata pins the quarantine contract: cycle
// metadata that passes the checksum but fails structural validation is
// ErrFormat — the caller's .bad quarantine path, never a bad cursor in
// the replayer.
func TestTraceCodecCorruptCycleMetadata(t *testing.T) {
	net := detAlphaBeta{alphaBeta{alpha: 2e-5, beta: 1e-8}}
	tr := recordMarkedWavefront(t, net, 8)
	corrupt := func(name string, mutate func(c *traceCycle)) {
		t.Helper()
		bad := *tr
		bad.cyc.classOf = append([]int32(nil), tr.cyc.classOf...)
		bad.cyc.first = append([]cycCursor(nil), tr.cyc.first...)
		bad.cyc.last = append([]cycCursor(nil), tr.cyc.last...)
		mutate(&bad.cyc)
		if _, err := DecodeTrace(bad.encodeBinary(TraceCodecVersion)); !errors.Is(err, artifact.ErrFormat) {
			t.Fatalf("%s: err = %v, want ErrFormat", name, err)
		}
	}
	corrupt("zero period", func(c *traceCycle) { c.period = 0 })
	corrupt("geometry overflow", func(c *traceCycle) { c.cycles = c.gens + 7 })
	corrupt("class out of range", func(c *traceCycle) { c.classOf[3] = int32(len(c.first)) + 9 })
	corrupt("negative class", func(c *traceCycle) { c.classOf[0] = -2 })
	corrupt("cursor off boundary", func(c *traceCycle) { c.last[0].sop = 1 << 28 })
}
