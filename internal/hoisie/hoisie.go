// Package hoisie implements the Los Alamos wavefront model of Hoisie,
// Lubeck & Wasserman (IJHPCA 2000; the paper's references [2,3]): execution
// time decomposed as
//
//	Ttotal = Tcomputation + Tcommunication - Toverlap
//
// with each term modelled independently (Section 3 of the paper contrasts
// this with LogGP's interleaved formulation). Computation is total flops at
// the achieved rate; communication charges every message at its full
// send-plus-receive cost with no overlap credit (blocking MPI), and the
// pipeline penalty multiplies the per-stage cost by the fill depth of this
// reproduction's four-corner-group schedule.
package hoisie

import (
	"fmt"
	"math"
)

// Machine parameters: per-message and per-byte communication costs plus the
// achieved computation rate.
type Machine struct {
	TMsg     float64 // fixed cost of one message (send + receive), seconds
	TByte    float64 // incremental cost per byte, seconds
	MFLOPS   float64 // achieved computation rate
	TLatency float64 // exposed one-way latency on pipeline fill hops
}

// App is the wavefront application description.
type App struct {
	PX, PY       int
	StepsPerIter int     // block steps per processor per iteration
	FlopsPerStep float64 // floating-point operations of one block
	EWBytes      int
	NSBytes      int
	SerialFlops  float64 // non-sweep per-iteration flops per processor
	Iterations   int
}

// Breakdown reports the model's three terms alongside the total.
type Breakdown struct {
	Total         float64
	Computation   float64
	Communication float64
	Overlap       float64
	Pipeline      float64 // fill contribution included in Total
}

// Predict evaluates the model.
func (m Machine) Predict(a App) (Breakdown, error) {
	if a.PX <= 0 || a.PY <= 0 || a.StepsPerIter <= 0 || a.Iterations <= 0 {
		return Breakdown{}, fmt.Errorf("hoisie: incomplete application %+v", a)
	}
	if m.MFLOPS <= 0 {
		return Breakdown{}, fmt.Errorf("hoisie: non-positive rate")
	}
	perFlop := 1 / (m.MFLOPS * 1e6)
	wBlock := a.FlopsPerStep * perFlop

	var commPerStep float64
	if a.PX > 1 {
		commPerStep += m.TMsg + m.TByte*float64(a.EWBytes)
	}
	if a.PY > 1 {
		commPerStep += m.TMsg + m.TByte*float64(a.NSBytes)
	}

	fill := float64(3*(a.PX-1) + 2*(a.PY-1))
	steps := float64(a.StepsPerIter)

	computation := float64(a.Iterations) * (steps*wBlock + a.SerialFlops*perFlop)
	communication := float64(a.Iterations) * (steps*commPerStep + reduceCost(m, a))
	pipeline := float64(a.Iterations) * fill * (wBlock + commPerStep + m.TLatency)
	overlap := 0.0 // blocking sends and receives: no overlap credit

	total := computation + communication + pipeline - overlap
	return Breakdown{
		Total:         total,
		Computation:   computation,
		Communication: communication,
		Overlap:       overlap,
		Pipeline:      pipeline,
	}, nil
}

func reduceCost(m Machine, a App) float64 {
	p := a.PX * a.PY
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p))) * (m.TMsg + m.TLatency)
}
