package hoisie

import (
	"math"
	"testing"
)

func testMachine() Machine {
	return Machine{TMsg: 20e-6, TByte: 0.0044e-6, MFLOPS: 340, TLatency: 13e-6}
}

func testApp(px, py int) App {
	return App{
		PX: px, PY: py,
		StepsPerIter: 80,
		FlopsPerStep: 75000 * 37,
		EWBytes:      12000,
		NSBytes:      12000,
		SerialFlops:  125000 * 7,
		Iterations:   12,
	}
}

func TestSerialBreakdown(t *testing.T) {
	b, err := testMachine().Predict(testApp(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Communication != 0 || b.Pipeline != 0 || b.Overlap != 0 {
		t.Errorf("serial terms non-zero: %+v", b)
	}
	want := 12 * (80*75000*37 + 125000*7) / 340e6
	if math.Abs(b.Computation-want)/want > 1e-12 {
		t.Errorf("computation = %v, want %v", b.Computation, want)
	}
	if b.Total != b.Computation {
		t.Errorf("total %v != computation %v", b.Total, b.Computation)
	}
}

func TestDecompositionIdentity(t *testing.T) {
	// Ttotal = Tcomp + Tcomm + Tpipe - Toverlap by construction.
	b, err := testMachine().Predict(testApp(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	sum := b.Computation + b.Communication + b.Pipeline - b.Overlap
	if math.Abs(b.Total-sum) > 1e-12 {
		t.Errorf("decomposition violated: %v vs %v", b.Total, sum)
	}
	if b.Communication <= 0 || b.Pipeline <= 0 {
		t.Errorf("parallel terms must be positive: %+v", b)
	}
}

func TestGrowthWithArray(t *testing.T) {
	m := testMachine()
	prev := 0.0
	for _, d := range [][2]int{{1, 1}, {2, 2}, {4, 5}, {8, 8}, {20, 20}} {
		b, err := m.Predict(testApp(d[0], d[1]))
		if err != nil {
			t.Fatal(err)
		}
		if b.Total <= prev {
			t.Fatalf("%v: total %v not above %v", d, b.Total, prev)
		}
		prev = b.Total
	}
}

func TestValidation(t *testing.T) {
	if _, err := testMachine().Predict(App{}); err == nil {
		t.Error("expected app validation error")
	}
	if _, err := (Machine{}).Predict(testApp(2, 2)); err == nil {
		t.Error("expected machine validation error")
	}
}
