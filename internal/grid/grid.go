// Package grid describes the SWEEP3D spatial grid and its two-dimensional
// processor decomposition. The global it x jt x kt cell grid is split over a
// Px x Py logical processor array in the i (x) and j (y) directions; the k
// (z) direction is never decomposed, exactly as in the original benchmark.
package grid

import "fmt"

// Global is the global cell grid (the paper's "data size", e.g. 100x100x50).
type Global struct {
	NX, NY, NZ int
}

// Cells returns the total number of cells in the global grid.
func (g Global) Cells() int64 { return int64(g.NX) * int64(g.NY) * int64(g.NZ) }

// Validate reports whether all extents are positive.
func (g Global) Validate() error {
	if g.NX <= 0 || g.NY <= 0 || g.NZ <= 0 {
		return fmt.Errorf("grid: non-positive global extents %dx%dx%d", g.NX, g.NY, g.NZ)
	}
	return nil
}

func (g Global) String() string { return fmt.Sprintf("%dx%dx%d", g.NX, g.NY, g.NZ) }

// Decomp is the logical 2-D processor array: PX processors along i, PY
// along j (the paper's "2D Proc. Array", e.g. 4x4).
type Decomp struct {
	PX, PY int
}

// Size returns the total number of processors PX*PY.
func (d Decomp) Size() int { return d.PX * d.PY }

// Validate reports whether the array dimensions are positive.
func (d Decomp) Validate() error {
	if d.PX <= 0 || d.PY <= 0 {
		return fmt.Errorf("grid: non-positive processor array %dx%d", d.PX, d.PY)
	}
	return nil
}

func (d Decomp) String() string { return fmt.Sprintf("%dx%d", d.PX, d.PY) }

// Rank maps processor-array coordinates to a linear rank (row major: rank =
// iy*PX + ix), matching the rank layout the message-passing runtime uses.
func (d Decomp) Rank(ix, iy int) int { return iy*d.PX + ix }

// Coords is the inverse of Rank.
func (d Decomp) Coords(rank int) (ix, iy int) { return rank % d.PX, rank / d.PX }

// Sub is one processor's portion of the global grid.
type Sub struct {
	Rank   int
	IX, IY int // processor coordinates in the array
	X0, Y0 int // global index of the first local cell in x and y
	NX, NY int // local extents in x and y
	NZ     int // local extent in z (always the global kt)
}

// Cells returns the number of local cells.
func (s Sub) Cells() int { return s.NX * s.NY * s.NZ }

// split distributes n cells over p parts as evenly as possible, giving the
// first n%p parts one extra cell (the same convention as SWEEP3D's
// decomposition routine). It returns the start offset and length of part i.
func split(n, p, i int) (start, length int) {
	base := n / p
	rem := n % p
	if i < rem {
		return i * (base + 1), base + 1
	}
	return rem*(base+1) + (i-rem)*base, base
}

// Partition splits the global grid over the processor array. Every processor
// receives a non-empty subgrid; an error is returned if the array is larger
// than the grid in either decomposed direction.
func Partition(g Global, d Decomp) ([]Sub, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.PX > g.NX {
		return nil, fmt.Errorf("grid: %d processors along x for only %d cells", d.PX, g.NX)
	}
	if d.PY > g.NY {
		return nil, fmt.Errorf("grid: %d processors along y for only %d cells", d.PY, g.NY)
	}
	subs := make([]Sub, d.Size())
	for iy := 0; iy < d.PY; iy++ {
		y0, ny := split(g.NY, d.PY, iy)
		for ix := 0; ix < d.PX; ix++ {
			x0, nx := split(g.NX, d.PX, ix)
			r := d.Rank(ix, iy)
			subs[r] = Sub{Rank: r, IX: ix, IY: iy, X0: x0, Y0: y0, NX: nx, NY: ny, NZ: g.NZ}
		}
	}
	return subs, nil
}

// Neighbor direction constants for the 2-D array.
const (
	West  = iota // -x
	East         // +x
	North        // -y (lower j side)
	South        // +y (higher j side)
)

// Neighbor returns the rank of the neighbour of (ix,iy) in the given
// direction, or -1 at the array edge.
func (d Decomp) Neighbor(ix, iy, dir int) int {
	switch dir {
	case West:
		if ix == 0 {
			return -1
		}
		return d.Rank(ix-1, iy)
	case East:
		if ix == d.PX-1 {
			return -1
		}
		return d.Rank(ix+1, iy)
	case North:
		if iy == 0 {
			return -1
		}
		return d.Rank(ix, iy-1)
	case South:
		if iy == d.PY-1 {
			return -1
		}
		return d.Rank(ix, iy+1)
	}
	return -1
}

// UpstreamDownstream returns, for a sweep travelling with x-sign sx and
// y-sign sy (+1 or -1), the ranks messages are received from (upstream) and
// sent to (downstream) in the i and j directions; -1 where the processor is
// on the sweep's inflow or outflow boundary.
func (d Decomp) UpstreamDownstream(ix, iy, sx, sy int) (upX, downX, upY, downY int) {
	if sx > 0 {
		upX, downX = d.Neighbor(ix, iy, West), d.Neighbor(ix, iy, East)
	} else {
		upX, downX = d.Neighbor(ix, iy, East), d.Neighbor(ix, iy, West)
	}
	if sy > 0 {
		upY, downY = d.Neighbor(ix, iy, North), d.Neighbor(ix, iy, South)
	} else {
		upY, downY = d.Neighbor(ix, iy, South), d.Neighbor(ix, iy, North)
	}
	return
}

// PipelineDepth returns the number of wavefront stages between the sweep
// origin corner and processor (ix,iy) for a sweep with signs (sx,sy): the
// Manhattan distance from the origin corner. The far corner has depth
// (PX-1)+(PY-1), the classic pipeline-fill length.
func (d Decomp) PipelineDepth(ix, iy, sx, sy int) int {
	dx := ix
	if sx < 0 {
		dx = d.PX - 1 - ix
	}
	dy := iy
	if sy < 0 {
		dy = d.PY - 1 - iy
	}
	return dx + dy
}

// FactorNearSquare returns the Px x Py factorisation of p whose aspect ratio
// is closest to square, preferring Px <= Py (the convention of the paper's
// tables, e.g. 4x5, 8x14). It is used when experiments are given only a
// processor count.
func FactorNearSquare(p int) (Decomp, error) {
	if p <= 0 {
		return Decomp{}, fmt.Errorf("grid: non-positive processor count %d", p)
	}
	best := Decomp{1, p}
	for px := 1; px*px <= p; px++ {
		if p%px == 0 {
			best = Decomp{PX: px, PY: p / px}
		}
	}
	return best, nil
}
