package grid

import (
	"testing"
	"testing/quick"
)

func TestPartitionCoversGrid(t *testing.T) {
	g := Global{NX: 100, NY: 150, NZ: 50}
	d := Decomp{PX: 2, PY: 3}
	subs, err := Partition(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 6 {
		t.Fatalf("got %d subs, want 6", len(subs))
	}
	var total int64
	for _, s := range subs {
		total += int64(s.Cells())
		if s.NZ != g.NZ {
			t.Errorf("rank %d: NZ = %d, want %d (z never decomposed)", s.Rank, s.NZ, g.NZ)
		}
	}
	if total != g.Cells() {
		t.Errorf("cells covered = %d, want %d", total, g.Cells())
	}
}

func TestPartitionPaperRows(t *testing.T) {
	// Every validation row of the paper uses 50x50x50 cells per processor;
	// check a few representative rows split exactly.
	cases := []struct {
		g Global
		d Decomp
	}{
		{Global{100, 100, 50}, Decomp{2, 2}},
		{Global{200, 250, 50}, Decomp{4, 5}},
		{Global{400, 700, 50}, Decomp{8, 14}},
		{Global{500, 550, 50}, Decomp{10, 11}},
	}
	for _, c := range cases {
		subs, err := Partition(c.g, c.d)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.g, c.d, err)
		}
		for _, s := range subs {
			if s.NX != 50 || s.NY != 50 || s.NZ != 50 {
				t.Errorf("%v/%v rank %d: local %dx%dx%d, want 50x50x50",
					c.g, c.d, s.Rank, s.NX, s.NY, s.NZ)
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(Global{0, 10, 10}, Decomp{1, 1}); err == nil {
		t.Error("expected error for zero extent")
	}
	if _, err := Partition(Global{10, 10, 10}, Decomp{0, 1}); err == nil {
		t.Error("expected error for zero processor dim")
	}
	if _, err := Partition(Global{3, 10, 10}, Decomp{4, 1}); err == nil {
		t.Error("expected error for more processors than cells")
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	d := Decomp{PX: 7, PY: 5}
	for r := 0; r < d.Size(); r++ {
		ix, iy := d.Coords(r)
		if d.Rank(ix, iy) != r {
			t.Errorf("rank %d -> (%d,%d) -> %d", r, ix, iy, d.Rank(ix, iy))
		}
		if ix < 0 || ix >= d.PX || iy < 0 || iy >= d.PY {
			t.Errorf("rank %d: coords (%d,%d) out of range", r, ix, iy)
		}
	}
}

func TestNeighbors(t *testing.T) {
	d := Decomp{PX: 3, PY: 2}
	// Middle of the bottom row: (1,0).
	if got := d.Neighbor(1, 0, West); got != d.Rank(0, 0) {
		t.Errorf("west = %d", got)
	}
	if got := d.Neighbor(1, 0, East); got != d.Rank(2, 0) {
		t.Errorf("east = %d", got)
	}
	if got := d.Neighbor(1, 0, North); got != -1 {
		t.Errorf("north = %d, want -1", got)
	}
	if got := d.Neighbor(1, 0, South); got != d.Rank(1, 1) {
		t.Errorf("south = %d", got)
	}
	if got := d.Neighbor(0, 0, West); got != -1 {
		t.Errorf("edge west = %d, want -1", got)
	}
	if got := d.Neighbor(1, 0, 99); got != -1 {
		t.Errorf("bogus dir = %d, want -1", got)
	}
}

func TestUpstreamDownstream(t *testing.T) {
	d := Decomp{PX: 3, PY: 3}
	// Sweep +x +y from corner (0,0): that corner has no upstream.
	upX, downX, upY, downY := d.UpstreamDownstream(0, 0, +1, +1)
	if upX != -1 || upY != -1 {
		t.Errorf("origin corner has upstream: %d %d", upX, upY)
	}
	if downX != d.Rank(1, 0) || downY != d.Rank(0, 1) {
		t.Errorf("origin corner downstream: %d %d", downX, downY)
	}
	// Same sweep at the far corner: no downstream.
	_, downX, _, downY = d.UpstreamDownstream(2, 2, +1, +1)
	if downX != -1 || downY != -1 {
		t.Errorf("far corner has downstream: %d %d", downX, downY)
	}
	// Reversed sweep swaps roles.
	upX, downX, _, _ = d.UpstreamDownstream(1, 1, -1, -1)
	if upX != d.Rank(2, 1) || downX != d.Rank(0, 1) {
		t.Errorf("reversed sweep upstream/downstream: %d %d", upX, downX)
	}
}

func TestPipelineDepth(t *testing.T) {
	d := Decomp{PX: 4, PY: 3}
	if got := d.PipelineDepth(0, 0, +1, +1); got != 0 {
		t.Errorf("origin depth = %d", got)
	}
	if got := d.PipelineDepth(3, 2, +1, +1); got != 5 {
		t.Errorf("far corner depth = %d, want 5", got)
	}
	if got := d.PipelineDepth(3, 2, -1, -1); got != 0 {
		t.Errorf("reversed far corner depth = %d, want 0", got)
	}
	if got := d.PipelineDepth(0, 0, -1, -1); got != 5 {
		t.Errorf("reversed origin depth = %d, want 5", got)
	}
}

func TestFactorNearSquare(t *testing.T) {
	cases := []struct {
		p      int
		px, py int
	}{
		{1, 1, 1}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4}, {20, 4, 5},
		{56, 7, 8}, {112, 8, 14}, {8000, 80, 100}, {13, 1, 13},
	}
	for _, c := range cases {
		d, err := FactorNearSquare(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if d.PX != c.px || d.PY != c.py {
			t.Errorf("FactorNearSquare(%d) = %v, want %dx%d", c.p, d, c.px, c.py)
		}
	}
	if _, err := FactorNearSquare(0); err == nil {
		t.Error("expected error for p=0")
	}
}

func TestPartitionPropertyInvariants(t *testing.T) {
	// For arbitrary small grids and decompositions, the partition either
	// errors (too many processors) or exactly tiles the grid with
	// contiguous, ordered, non-overlapping x/y ranges.
	f := func(nx, ny, nz, px, py uint8) bool {
		g := Global{int(nx%60) + 1, int(ny%60) + 1, int(nz%20) + 1}
		d := Decomp{int(px%8) + 1, int(py%8) + 1}
		subs, err := Partition(g, d)
		if err != nil {
			return d.PX > g.NX || d.PY > g.NY
		}
		var cells int64
		for _, s := range subs {
			if s.NX <= 0 || s.NY <= 0 {
				return false
			}
			cells += int64(s.Cells())
			// Local extents differ by at most one cell across the array.
		}
		if cells != g.Cells() {
			return false
		}
		// Rows tile x, columns tile y.
		for iy := 0; iy < d.PY; iy++ {
			x := 0
			for ix := 0; ix < d.PX; ix++ {
				s := subs[d.Rank(ix, iy)]
				if s.X0 != x {
					return false
				}
				x += s.NX
			}
			if x != g.NX {
				return false
			}
		}
		for ix := 0; ix < d.PX; ix++ {
			y := 0
			for iy := 0; iy < d.PY; iy++ {
				s := subs[d.Rank(ix, iy)]
				if s.Y0 != y {
					return false
				}
				y += s.NY
			}
			if y != g.NY {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	// Property: max and min local extent differ by at most 1 in each axis.
	f := func(nx, px uint8) bool {
		n := int(nx%100) + 1
		p := int(px%10) + 1
		if p > n {
			return true
		}
		minw, maxw := n, 0
		covered := 0
		for i := 0; i < p; i++ {
			start, length := split(n, p, i)
			if start != covered {
				return false
			}
			covered += length
			if length < minw {
				minw = length
			}
			if length > maxw {
				maxw = length
			}
		}
		return covered == n && maxw-minw <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
