// Package breaker is the fleet-health primitive behind paceserve's shard
// router: a circuit breaker that stops a replica from burning proxy
// round-trips on a peer that keeps failing, plus the retry backoff that
// paces the attempts it does make.
//
// The breaker is the classic three-state machine over a sliding
// failure-rate window:
//
//	closed    — requests flow; outcomes fill the window. When the window
//	            holds at least MinSamples observations and the failure
//	            rate reaches Threshold, the breaker opens.
//	open      — Allow refuses everything (the caller skips the doomed
//	            round-trip entirely) until Cooldown has elapsed since the
//	            breaker opened.
//	half-open — after the cooldown, Allow admits exactly one trial
//	            request (or active probe); its success closes the breaker
//	            and resets the window, its failure re-opens it for
//	            another full cooldown. A trial that never reports is
//	            abandoned after Cooldown so a crashed trial cannot wedge
//	            the breaker half-open forever.
//
// Everything is clock-injectable (Config.Now) and takes one mutex per
// operation, so tests drive exact, deterministic state transitions with a
// fake clock and the serving hot path pays a few nanoseconds.
package breaker

import (
	"fmt"
	"sync"
	"time"
)

// State is a breaker's position in the closed → open → half-open cycle.
type State int32

const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Config parameterises a Breaker. The zero value of any field selects the
// documented default.
type Config struct {
	// Window is the sliding failure-rate window width (default 10s).
	// Outcomes older than Window no longer count against the peer.
	Window time.Duration
	// Buckets is the window's granularity (default 10): the window is a
	// ring of Window/Buckets slices, so expiry resolution is one slice.
	Buckets int
	// Threshold is the failure rate in [0,1] at which a closed breaker
	// opens (default 0.5).
	Threshold float64
	// MinSamples is the minimum number of windowed observations before
	// the threshold applies (default 4): one unlucky first request must
	// not open a breaker.
	MinSamples int
	// Cooldown is both the open→half-open delay and the half-open trial
	// abandonment timeout (default 5s).
	Cooldown time.Duration
	// Now injects the clock (default time.Now). Tests drive transitions
	// deterministically through a fake.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// bucket is one slice of the sliding window.
type bucket struct {
	start     time.Time // slice start; zero = empty
	successes uint32
	failures  uint32
}

// Breaker is a circuit breaker over one dependency (for paceserve, one
// peer replica). Safe for concurrent use.
type Breaker struct {
	cfg   Config
	slice time.Duration // Window / Buckets

	mu      sync.Mutex
	state   State
	buckets []bucket
	cur     int       // index of the newest bucket
	openAt  time.Time // when the breaker last opened
	trialAt time.Time // when the half-open trial was admitted; zero = none

	opens       uint64 // cumulative closed/half-open → open transitions
	closes      uint64 // cumulative half-open → closed recoveries
	rejected    uint64 // Allow() == false
	lastChange  time.Time
	lastFailure time.Time
}

// New builds a Breaker; see Config for the knobs.
func New(cfg Config) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:     cfg,
		slice:   cfg.Window / time.Duration(cfg.Buckets),
		buckets: make([]bucket, cfg.Buckets),
	}
}

// advance rotates the bucket ring up to now, clearing slices that fell out
// of the window. Must hold mu.
func (b *Breaker) advance(now time.Time) {
	cur := &b.buckets[b.cur]
	if cur.start.IsZero() {
		cur.start = now
		return
	}
	for !now.Before(cur.start.Add(b.slice)) {
		next := cur.start.Add(b.slice)
		if now.Sub(next) >= b.cfg.Window {
			// The whole ring has expired; reset rather than spin through
			// an unbounded number of empty rotations.
			for i := range b.buckets {
				b.buckets[i] = bucket{}
			}
			b.cur = 0
			b.buckets[0].start = now
			return
		}
		b.cur = (b.cur + 1) % len(b.buckets)
		b.buckets[b.cur] = bucket{start: next}
		cur = &b.buckets[b.cur]
	}
}

// windowCounts sums the live slices. Must hold mu (after advance).
func (b *Breaker) windowCounts(now time.Time) (successes, failures int) {
	for i := range b.buckets {
		bk := &b.buckets[i]
		if bk.start.IsZero() || now.Sub(bk.start) >= b.cfg.Window {
			continue
		}
		successes += int(bk.successes)
		failures += int(bk.failures)
	}
	return successes, failures
}

// Allow reports whether an attempt against the dependency may proceed.
// Closed admits everything; open admits nothing until the cooldown has
// elapsed, then transitions to half-open and admits exactly one trial;
// half-open refuses everything while the trial is in flight (and admits a
// fresh trial if the previous one was abandoned for a full cooldown).
// Every admitted attempt MUST report its outcome via Record.
func (b *Breaker) Allow() bool {
	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now.Sub(b.openAt) < b.cfg.Cooldown {
			b.rejected++
			return false
		}
		b.state = HalfOpen
		b.trialAt = now
		b.lastChange = now
		return true
	default: // HalfOpen
		if !b.trialAt.IsZero() && now.Sub(b.trialAt) < b.cfg.Cooldown {
			b.rejected++
			return false
		}
		b.trialAt = now
		return true
	}
}

// Record reports an attempt's outcome. In the closed state it feeds the
// sliding window (and may open the breaker); in half-open it resolves the
// trial — success closes the breaker and resets the window, failure
// re-opens it. Outcomes arriving while open (stragglers from attempts
// admitted before the breaker tripped, or probe results recorded without
// admission) only feed the window; open-state recovery goes through the
// half-open trial, never around it.
func (b *Breaker) Record(ok bool) {
	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	bk := &b.buckets[b.cur]
	if ok {
		bk.successes++
	} else {
		bk.failures++
		b.lastFailure = now
	}
	switch b.state {
	case Closed:
		if !ok {
			succ, fail := b.windowCounts(now)
			if total := succ + fail; total >= b.cfg.MinSamples &&
				float64(fail) >= b.cfg.Threshold*float64(total) {
				b.trip(now)
			}
		}
	case HalfOpen:
		if ok {
			b.state = Closed
			b.trialAt = time.Time{}
			b.lastChange = now
			b.closes++
			// A recovered peer starts with a clean slate: stale failures
			// from the outage must not instantly re-trip the breaker.
			for i := range b.buckets {
				b.buckets[i] = bucket{}
			}
			b.cur = 0
		} else {
			b.trip(now)
		}
	}
}

// trip moves to open. Must hold mu.
func (b *Breaker) trip(now time.Time) {
	b.state = Open
	b.openAt = now
	b.trialAt = time.Time{}
	b.lastChange = now
	b.opens++
}

// State returns the current state, applying the open→half-open time
// transition (so an observer never reads a stale "open" after the
// cooldown has passed — the next Allow would be admitted).
func (b *Breaker) State() State {
	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && now.Sub(b.openAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Snapshot is a point-in-time view of a breaker for stats/metrics.
type Snapshot struct {
	State       string  `json:"state"`
	FailureRate float64 `json:"failure_rate"` // over the live window
	Samples     int     `json:"samples"`      // windowed observations
	Opens       uint64  `json:"opens"`        // cumulative trips
	Closes      uint64  `json:"closes"`       // cumulative recoveries
	Rejected    uint64  `json:"rejected"`     // attempts refused by Allow
	// SecondsSinceChange is the age of the last state transition (0 when
	// the breaker has never left closed).
	SecondsSinceChange float64 `json:"seconds_since_change,omitempty"`
}

// Snapshot captures the breaker's current state and window counters.
func (b *Breaker) Snapshot() Snapshot {
	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	state := b.state
	if state == Open && now.Sub(b.openAt) >= b.cfg.Cooldown {
		state = HalfOpen
	}
	succ, fail := b.windowCounts(now)
	s := Snapshot{
		State:    state.String(),
		Samples:  succ + fail,
		Opens:    b.opens,
		Closes:   b.closes,
		Rejected: b.rejected,
	}
	if s.Samples > 0 {
		s.FailureRate = float64(fail) / float64(s.Samples)
	}
	if !b.lastChange.IsZero() {
		s.SecondsSinceChange = now.Sub(b.lastChange).Seconds()
	}
	return s
}
