package breaker

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff produces decorrelated-jitter exponential delays (the AWS
// architecture blog's "decorrelated jitter": each delay is drawn
// uniformly from [Base, 3*previous], capped at Cap). Compared to plain
// exponential backoff with full jitter it spreads concurrent retriers
// apart faster while keeping the expected delay growth exponential.
//
// A Backoff is safe for concurrent use; a deterministic seed makes the
// delay sequence reproducible for tests.
type Backoff struct {
	base, cap time.Duration

	mu   sync.Mutex
	rng  *rand.Rand
	prev time.Duration
}

// NewBackoff builds a Backoff over [base, cap] with a seeded RNG.
// Non-positive base defaults to 50ms, non-positive cap to 100×base.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 100 * base
	}
	if cap < base {
		cap = base
	}
	return &Backoff{
		base: base,
		cap:  cap,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Next returns the next delay: uniform in [base, 3*previous] (first call:
// [base, 3*base]), capped at cap.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	prev := b.prev
	if prev < b.base {
		prev = b.base
	}
	hi := 3 * prev
	if hi > b.cap {
		hi = b.cap
	}
	d := b.base
	if span := hi - b.base; span > 0 {
		d += time.Duration(b.rng.Int63n(int64(span) + 1))
	}
	b.prev = d
	return d
}

// Reset returns the sequence to its initial range; the next Next draws
// from [base, 3*base] again.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.prev = 0
	b.mu.Unlock()
}
