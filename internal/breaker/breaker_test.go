package breaker

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock; the zero value starts at a
// fixed epoch so failures print readable offsets.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(clk *fakeClock) *Breaker {
	return New(Config{
		Window:     10 * time.Second,
		Buckets:    10,
		Threshold:  0.5,
		MinSamples: 4,
		Cooldown:   5 * time.Second,
		Now:        clk.Now,
	})
}

// TestBreakerLifecycle drives the full closed → open → half-open → closed
// cycle on a fake clock and checks every transition happens exactly when
// the configuration says it must.
func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)

	if got := b.State(); got != Closed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Three failures: under MinSamples, stays closed.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after 3 failures = %v, want closed (MinSamples=4)", got)
	}
	// Fourth failure reaches MinSamples at 100% failure rate: opens.
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state after 4 failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}

	// One nanosecond short of the cooldown: still open.
	clk.Advance(5*time.Second - time.Nanosecond)
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt 1ns before cooldown")
	}
	// At the cooldown: half-open, exactly one trial admitted.
	clk.Advance(time.Nanosecond)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state at cooldown = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the trial")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// Trial fails: re-open for another full cooldown.
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state after failed trial = %v, want open", got)
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second trial after re-cooldown")
	}
	// Trial succeeds: closed, window reset (a single failure right after
	// recovery must not re-trip off stale outage samples).
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful trial = %v, want closed", got)
	}
	b.Record(false)
	if got := b.State(); got != Closed {
		t.Fatalf("one failure after recovery re-tripped: state = %v", got)
	}

	snap := b.Snapshot()
	if snap.Opens != 2 || snap.Closes != 1 {
		t.Errorf("snapshot opens/closes = %d/%d, want 2/1", snap.Opens, snap.Closes)
	}
	if snap.Rejected == 0 {
		t.Errorf("snapshot rejected = 0, want > 0")
	}
}

// TestBreakerFailureRateWindow checks the sliding window: mixed outcomes
// below threshold stay closed, old failures expire out of the window.
func TestBreakerFailureRateWindow(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)

	// Alternating fail/ok reaches exactly the 50% threshold once enough
	// samples accumulate: opens (the threshold is inclusive).
	for i := 0; i < 10 && b.State() == Closed; i++ {
		b.Allow()
		b.Record(i%2 == 1)
	}
	if got := b.State(); got != Open {
		t.Fatalf("50%% failure rate left breaker %v, want open", got)
	}

	// Fresh breaker: 25% failures (ok,ok,ok,fail repeating — the rate
	// never exceeds 1/3 at any prefix past MinSamples) stays closed.
	b = newTestBreaker(clk)
	for i := 0; i < 12; i++ {
		b.Allow()
		b.Record(i%4 != 3)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("25%% failure rate tripped breaker to %v", got)
	}

	// Failures expire: 4 failures now, then the window slides past them;
	// a lone new failure joins an empty window (1 sample < MinSamples).
	b = newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	clk.Advance(11 * time.Second) // everything expires
	b.Allow()
	b.Record(false)
	if got := b.State(); got != Closed {
		t.Fatalf("expired failures still counted: state = %v", got)
	}
}

// TestBreakerAbandonedTrial checks a half-open trial that never reports is
// abandoned after a cooldown, so a crashed trial cannot wedge the breaker.
func TestBreakerAbandonedTrial(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(false)
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("trial refused at cooldown")
	}
	// The trial never records. Within the cooldown no second trial runs...
	clk.Advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("second trial admitted while the first was live")
	}
	// ...after it, the trial is presumed lost and a fresh one is admitted.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("abandoned trial blocked the breaker")
	}
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state after recovered trial = %v, want closed", got)
	}
}

// TestBreakerStragglerRecordWhileOpen checks outcomes recorded while open
// (in-flight attempts admitted before the trip, probe results) never close
// the breaker around the half-open trial.
func TestBreakerStragglerRecordWhileOpen(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(false)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
	b.Record(true) // straggler success
	if got := b.State(); got != Open {
		t.Fatalf("straggler success closed an open breaker: %v", got)
	}
}

// TestBreakerConcurrentHalfOpenSingleTrial hammers Allow from many
// goroutines at the half-open instant: exactly one wins.
func TestBreakerConcurrentHalfOpenSingleTrial(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(false)
	}
	clk.Advance(5 * time.Second)

	const n = 64
	var admitted, wg sync.WaitGroup
	wins := make(chan struct{}, n)
	admitted.Add(0)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			if b.Allow() {
				wins <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(wins)
	count := 0
	for range wins {
		count++
	}
	if count != 1 {
		t.Fatalf("half-open admitted %d concurrent trials, want exactly 1", count)
	}
}

// TestBackoffDeterministicAndBounded pins the decorrelated-jitter
// invariants: every delay is within [base, cap], the sequence is
// reproducible for one seed, and Reset restarts the range.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	base, cap := 10*time.Millisecond, 400*time.Millisecond
	a := NewBackoff(base, cap, 7)
	b := NewBackoff(base, cap, 7)
	prev := base
	for i := 0; i < 50; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < base || da > cap {
			t.Fatalf("step %d: delay %v outside [%v, %v]", i, da, base, cap)
		}
		if max := 3 * prev; max < cap && da > max {
			t.Fatalf("step %d: delay %v exceeds 3*prev = %v", i, da, max)
		}
		prev = da
	}
	// Growth is real: within 50 draws the delays reach at least half the
	// cap (expected growth is exponential, so this is far past certain).
	var max time.Duration
	c := NewBackoff(base, cap, 7)
	for i := 0; i < 50; i++ {
		if d := c.Next(); d > max {
			max = d
		}
	}
	if max < cap/2 {
		t.Errorf("max delay over 50 draws = %v, want ≥ %v; growth looks broken", max, cap/2)
	}

	a.Reset()
	if d := a.Next(); d > 3*base {
		t.Errorf("post-Reset delay %v exceeds first-step range [%v, %v]", d, base, 3*base)
	}

	// Different seeds should diverge (jitter is real).
	x, y := NewBackoff(base, cap, 1), NewBackoff(base, cap, 2)
	same := true
	for i := 0; i < 10; i++ {
		if x.Next() != y.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

// TestBreakerConcurrentRecord is the -race exercise: concurrent
// Allow/Record/Snapshot on a live clock must be data-race free and leave
// coherent counters.
func TestBreakerConcurrentRecord(t *testing.T) {
	b := New(Config{Window: 50 * time.Millisecond, Cooldown: 10 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					b.Record(i%3 != 0)
				}
				if i%50 == 0 {
					_ = b.Snapshot()
					_ = b.State()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := b.Snapshot()
	if snap.State == "" {
		t.Fatal("empty snapshot state")
	}
}
