// Package pacesweep reproduces the system described in "Predictive
// Performance Analysis of a Parallel Pipelined Synchronous Wavefront
// Application for Commodity Processor Cluster Systems" (Mudalige, Jarvis,
// Spooner, Nudd — IEEE CLUSTER 2006).
//
// The repository contains:
//
//   - a from-scratch Go implementation of the ASCI SWEEP3D pipelined
//     wavefront Sn transport benchmark (internal/sweep) running over an
//     MPI-like message-passing runtime (internal/mp) that doubles as a
//     virtual-time cluster simulator;
//   - a reproduction of the PACE layered performance-modelling toolset:
//     the capp C-subset static analyser (internal/capp), the CHIP3S-style
//     performance specification language (internal/psl), the HMCL hardware
//     model layer (internal/hwmodel) and the evaluation engine
//     (internal/pace);
//   - simulated hardware benchmarking (internal/bench) against ground-truth
//     platform descriptions (internal/platform);
//   - LogGP and Hoisie et al. baseline analytic models (internal/loggp,
//     internal/hoisie);
//   - experiment drivers regenerating every table and figure of the paper's
//     evaluation (internal/experiments, cmd/validate, cmd/speculate).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package pacesweep

// Version identifies the release of this reproduction.
const Version = "1.0.0"
