// Package pacesweep reproduces the system described in "Predictive
// Performance Analysis of a Parallel Pipelined Synchronous Wavefront
// Application for Commodity Processor Cluster Systems" (Mudalige, Jarvis,
// Spooner, Nudd — IEEE CLUSTER 2006).
//
// The repository contains:
//
//   - a from-scratch Go implementation of the ASCI SWEEP3D pipelined
//     wavefront Sn transport benchmark (internal/sweep) running over an
//     MPI-like message-passing runtime (internal/mp) that doubles as a
//     virtual-time cluster simulator. The runtime offers two scheduler
//     backends: the legacy goroutine-per-rank backend (watchdog, real
//     parallel arithmetic) and an event-driven cooperative backend
//     ordered by a virtual-clock heap — lock-free, deterministic, and
//     bit-identical to the goroutine backend, used by the evaluation
//     engine and the simulated benchmarks;
//   - a reproduction of the PACE layered performance-modelling toolset:
//     the capp C-subset static analyser (internal/capp), the CHIP3S-style
//     performance specification language (internal/psl), the HMCL hardware
//     model layer (internal/hwmodel) and the evaluation engine
//     (internal/pace);
//   - simulated hardware benchmarking (internal/bench) against ground-truth
//     platform descriptions (internal/platform);
//   - LogGP and Hoisie et al. baseline analytic models (internal/loggp,
//     internal/hoisie);
//   - experiment drivers regenerating every table and figure of the paper's
//     evaluation (internal/experiments, cmd/validate, cmd/speculate),
//     fanned out across configurations on a bounded worker pool.
//
// Model evaluation picks its path by array size: pace.PredictAuto runs
// full template evaluation (every virtual processor simulated on the
// event scheduler) through pace.TemplateMaxRanks = 8000 processors — the
// paper's largest speculative studies — and the analytic closed form
// beyond.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package pacesweep

// Version identifies the release of this reproduction.
const Version = "1.0.0"
