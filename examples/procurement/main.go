// Procurement study: the paper's Section 1 motivation — "when procuring
// systems users can use performance predictions to compare alternative
// vendor systems". This example sizes a production Sn transport workload
// (a 200-million-cell problem at 512 processors) on the candidate systems
// without buying any of them: each candidate is benchmarked (simulated),
// a PACE model is fitted, and the workload is predicted.
package main

import (
	"fmt"
	"log"
	"sort"

	"pacesweep/internal/experiments"
	"pacesweep/internal/grid"
	"pacesweep/internal/pace"
	"pacesweep/internal/platform"
	"pacesweep/internal/report"
)

func main() {
	// The workload to procure for: weak-scaled 50x50x160 per processor on
	// a 16x32 array (204.8M cells), the benchmark's mk=10/mmi=3 blocking,
	// 12 iterations per time step.
	perProc := grid.Global{NX: 50, NY: 50, NZ: 160}
	d := grid.Decomp{PX: 16, PY: 32}
	cfg := pace.Config{
		Grid: grid.Global{
			NX: perProc.NX * d.PX, NY: perProc.NY * d.PY, NZ: perProc.NZ,
		},
		Decomp: d, MK: 10, MMI: 3, Angles: 6, Iterations: 12,
	}
	fmt.Printf("Workload: %v cells on %v processors (%d total), %d iterations per step\n",
		cfg.Grid, cfg.Decomp, cfg.Decomp.Size(), cfg.Iterations)
	fmt.Println("Realistic multigroup runs scale this by ~30 groups x 1000 time steps (Section 6).")
	fmt.Println()

	type candidate struct {
		name    string
		seconds float64
		mflops  float64
	}
	var results []candidate
	for _, pl := range platform.All() {
		ev, model, err := experiments.BuildEvaluator(pl, perProc, 2024)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := ev.PredictAuto(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, candidate{pl.Name, pred.Total, model.MFLOPS})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].seconds < results[j].seconds })

	t := &report.Table{
		Title:   "Candidate systems, predicted per-step execution time",
		Headers: []string{"Rank", "System", "MFLOPS/proc", "Per step (s)", "30 groups x 1000 steps"},
	}
	for i, c := range results {
		full := c.seconds * 30 * 1000 / 3600 // hours
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			c.name,
			fmt.Sprintf("%.0f", c.mflops),
			fmt.Sprintf("%.2f", c.seconds),
			fmt.Sprintf("%.0f h", full),
		)
	}
	t.AddFooter("Models fitted purely from (simulated) benchmark measurements; no production runs needed.")
	fmt.Print(t.String())
}
