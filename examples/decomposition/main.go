// Decomposition study: use the model for configuration tuning — "allowing
// efficient scheduling by anticipating a workload's behaviour prior to
// execution" (Section 1). For a fixed 96-processor Pentium III partition
// and a fixed 400x600x50 problem, the example sweeps every 2-D processor
// factorisation and the k-blocking factor, and reports the best
// configurations. The model evaluates hundreds of configurations in
// seconds; running each on the machine would take hours.
package main

import (
	"fmt"
	"log"
	"sort"

	"pacesweep/internal/experiments"
	"pacesweep/internal/grid"
	"pacesweep/internal/pace"
	"pacesweep/internal/platform"
	"pacesweep/internal/report"
)

func main() {
	const procs = 96
	g := grid.Global{NX: 400, NY: 600, NZ: 50}
	pl := platform.PentiumIIIMyrinet()
	ev, model, err := experiments.BuildEvaluator(pl, grid.Global{NX: 50, NY: 50, NZ: 50}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tuning %v on %d processors of %s (%.0f MFLOPS)\n\n",
		g, procs, pl.Name, model.MFLOPS)

	type config struct {
		d    grid.Decomp
		mk   int
		time float64
	}
	var all []config
	for px := 1; px <= procs; px++ {
		if procs%px != 0 {
			continue
		}
		d := grid.Decomp{PX: px, PY: procs / px}
		if g.NX%d.PX != 0 || g.NY%d.PY != 0 {
			continue
		}
		for _, mk := range []int{1, 2, 5, 10, 25, 50} {
			cfg := pace.Config{
				Grid: g, Decomp: d, MK: mk, MMI: 3, Angles: 6, Iterations: 12,
			}
			pred, err := ev.Predict(cfg)
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, config{d, mk, pred.Total})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].time < all[j].time })

	t := &report.Table{
		Title:   fmt.Sprintf("Best configurations out of %d evaluated", len(all)),
		Headers: []string{"Rank", "Array", "mk", "Predicted(s)", "vs best"},
	}
	for i := 0; i < 10 && i < len(all); i++ {
		c := all[i]
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			c.d.String(),
			fmt.Sprintf("%d", c.mk),
			fmt.Sprintf("%.2f", c.time),
			fmt.Sprintf("+%.1f%%", 100*(c.time-all[0].time)/all[0].time),
		)
	}
	worst := all[len(all)-1]
	t.AddFooter("worst configuration: %s mk=%d at %.2f s (+%.0f%% over best) — decomposition choice matters",
		worst.d, worst.mk, worst.time, 100*(worst.time-all[0].time)/all[0].time)
	fmt.Print(t.String())
}
