// Quickstart: solve a small SWEEP3D problem functionally, then walk the
// whole PACE methodology end to end on a simulated Pentium III / Myrinet
// cluster — profile the kernel, fit the communication curves, predict a
// parallel run, "measure" it on the cluster simulator, and compare.
package main

import (
	"fmt"
	"log"

	"pacesweep/internal/bench"
	"pacesweep/internal/capp"
	"pacesweep/internal/grid"
	"pacesweep/internal/mp"
	"pacesweep/internal/pace"
	"pacesweep/internal/platform"
	"pacesweep/internal/stats"
	"pacesweep/internal/sweep"
)

func main() {
	// --- 1. The application itself: a real Sn transport solve. ---
	fmt.Println("== 1. Functional SWEEP3D solve (16x16x8 grid, S4, 2x2 processors) ==")
	p := sweep.New(grid.Global{NX: 16, NY: 16, NZ: 8})
	p.MK = 4
	p.MMI = 2
	p.Iterations = 8
	res, err := sweep.SolveParallel(p, grid.Decomp{PX: 2, PY: 2}, mp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged to flux change %.2e after %d iterations\n", res.FluxErr, res.Iterations)
	fmt.Printf("particle balance: source %.4g = absorption %.4g + leakage %.4g (residual %.1e)\n",
		res.Balance.Source, res.Balance.Absorption, res.Balance.Leakage, res.Balance.Residual())

	// A Figure 1-style look at the wavefront: flux along the sweep
	// diagonal decreases toward the vacuum boundaries.
	fmt.Println("scalar flux along the grid diagonal:")
	g := p.Grid
	for i := 0; i < g.NZ; i++ {
		fmt.Printf("  cell (%2d,%2d,%2d): %.4f\n", i*2, i*2, i, res.FluxAt(g, i*2, i*2, i))
	}

	// --- 2. The PACE methodology on a simulated cluster. ---
	fmt.Println("\n== 2. PACE modelling of the paper's 2x2 validation row ==")
	pl := platform.PentiumIIIMyrinet()
	perProc := grid.Global{NX: 50, NY: 50, NZ: 50}

	prof, err := bench.ProfileKernel(pl, perProc, sweep.New(perProc), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated PAPI profiling: %.1f MFLOPS at 50^3 cells/processor (1x2 check: %.1f)\n",
		prof.MFLOPS, prof.MFLOPS1x2)

	model, err := bench.BuildModel(pl, perProc, sweep.New(perProc), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted Eq.3 send curve: A=%dB, %.1f+%.4gx us below, %.1f+%.4gx us above\n",
		model.Send.A, model.Send.B, model.Send.C, model.Send.D, model.Send.E)

	analysis, err := capp.SweepKernelAnalysis()
	if err != nil {
		log.Fatal(err)
	}
	ev, err := pace.NewEvaluator(model, analysis)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pace.Config{
		Grid:   grid.Global{NX: 100, NY: 100, NZ: 50},
		Decomp: grid.Decomp{PX: 2, PY: 2},
		MK:     10, MMI: 3, Angles: 6, Iterations: 12,
	}
	pred, err := ev.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PACE prediction: %s\n", pred)

	target := sweep.New(cfg.Grid)
	measured, err := bench.Measure(pl, target, cfg.Decomp, bench.MeasureOptions{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated measurement: %.2f s\n", measured)
	fmt.Printf("prediction error: %.2f%%  (paper's Table 1 row: meas 26.54, pred 28.59, err -7.72%%)\n",
		stats.RelErrPercent(measured, pred.Total))
}
