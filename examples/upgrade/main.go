// Upgrade study: the paper's Section 6 scenario — use the model to
// quantify "the possible benefits that can be gained by upgrading" before
// touching the machine. Starting from the Opteron/GigE cluster, the
// example asks two questions about the one-billion-cell ASCI problem:
//
//  1. What does a faster processor buy (achieved rate +25%, +50%)?
//  2. What does swapping Gigabit Ethernet for Myrinet 2000 buy?
//
// The answers reproduce the paper's observation that the workload stays
// compute-bound at moderate scale but the interconnect matters increasingly
// at thousands of processors.
package main

import (
	"fmt"
	"log"

	"pacesweep/internal/capp"
	"pacesweep/internal/experiments"
	"pacesweep/internal/grid"
	"pacesweep/internal/pace"
	"pacesweep/internal/platform"
	"pacesweep/internal/report"
)

func main() {
	perProc := grid.Global{NX: 25, NY: 25, NZ: 200} // the 1G-cell study's subgrid
	procCounts := []int{64, 512, 2000, 8000}

	// Base system: Opteron + GigE, model fitted from simulated benchmarks.
	base := platform.OpteronGigE()
	evBase, modelBase, err := experiments.BuildEvaluator(base, perProc, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Interconnect upgrade: same processors, Myrinet 2000 curves. Model
	// re-use is "a typical advantage of performance modelling" (Section 6):
	// swap only the mpi section of the hardware object.
	myrinetDonor := platform.OpteronMyrinet()
	netBench := myrinetDonor
	netBench.Proc = base.Proc // keep the real processor truth
	_, modelMyri, err := experiments.BuildEvaluator(netBench, perProc, 7)
	if err != nil {
		log.Fatal(err)
	}
	upgraded := *modelBase
	upgraded.Send, upgraded.Recv, upgraded.PingPong = modelMyri.Send, modelMyri.Recv, modelMyri.PingPong
	analysis, err := capp.SweepKernelAnalysis()
	if err != nil {
		log.Fatal(err)
	}
	evNet, err := pace.NewEvaluator(&upgraded, analysis)
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title: "Upgrade speculation — one-billion-cell problem (25x25x200 cells/processor)",
		Caption: fmt.Sprintf("base system %s at %.0f MFLOPS; all times per 12-iteration step",
			base.Name, modelBase.MFLOPS),
		Headers: []string{"Procs", "Base(s)", "+25% CPU", "+50% CPU", "Myrinet net", "best upgrade"},
	}
	for _, p := range procCounts {
		d, err := grid.FactorNearSquare(p)
		if err != nil {
			log.Fatal(err)
		}
		cfg := pace.Config{
			Grid: grid.Global{
				NX: perProc.NX * d.PX, NY: perProc.NY * d.PY, NZ: perProc.NZ,
			},
			Decomp: d, MK: 10, MMI: 3, Angles: 6, Iterations: 12,
		}
		baseT := predict(evBase, cfg)

		cpu25 := *modelBase
		cpu25.MFLOPS *= 1.25
		ev25, err := pace.NewEvaluator(&cpu25, analysis)
		if err != nil {
			log.Fatal(err)
		}
		cpu50 := *modelBase
		cpu50.MFLOPS *= 1.5
		ev50, err := pace.NewEvaluator(&cpu50, analysis)
		if err != nil {
			log.Fatal(err)
		}

		t25, t50, tNet := predict(ev25, cfg), predict(ev50, cfg), predict(evNet, cfg)
		best := "+50% CPU"
		if tNet < t50 {
			best = "Myrinet"
		}
		t.AddRow(
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.2f", baseT),
			fmt.Sprintf("%.2f (-%.0f%%)", t25, 100*(baseT-t25)/baseT),
			fmt.Sprintf("%.2f (-%.0f%%)", t50, 100*(baseT-t50)/baseT),
			fmt.Sprintf("%.2f (-%.0f%%)", tNet, 100*(baseT-tNet)/baseT),
			best,
		)
	}
	t.AddFooter("Compute upgrades dominate at every scale tested; the interconnect upgrade grows")
	t.AddFooter("with the processor count as fills and per-block messaging multiply (Section 6).")
	fmt.Print(t.String())
}

func predict(ev *pace.Evaluator, cfg pace.Config) float64 {
	pred, err := ev.PredictAuto(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return pred.Total
}
